package campaign

import (
	"encoding/json"
	"fmt"
	"time"

	"cts/internal/order"
)

// FaultKind names one family of scheduled fault weather.
type FaultKind string

// Fault families. Victim sets are scale-free: events name fractions and
// counts, and the schedule resolves them against the cell's node count, so
// one scenario runs unchanged from 100 to 1000 nodes.
const (
	// FaultChurn cycles Count victims through crash and recovery across the
	// event window: victim i goes down at At + i·(For/Count) and comes back
	// two steps later. Victims are taken from the top of the id range, so
	// the low ids (refresh drivers) stay undisturbed.
	FaultChurn FaultKind = "churn"
	// FaultPartition splits the network into components: the top Fraction
	// of nodes form a minority island for the window.
	FaultPartition FaultKind = "partition"
	// FaultAsymmetric blocks links from the majority toward the top
	// Fraction of nodes (one-way silence; the victims still transmit).
	FaultAsymmetric FaultKind = "asym-partition"
	// FaultPartial cuts the top Fraction of nodes off the *next* Fraction
	// of nodes in both directions while everyone else bridges both sides.
	FaultPartial FaultKind = "partial-partition"
	// FaultLossBursts applies Count correlated loss bursts of probability
	// Loss and length For, separated by Gap.
	FaultLossBursts FaultKind = "loss-bursts"
	// FaultShape installs a network-wide link-shaping window: extra fixed
	// Latency and/or Loss on every link for the window (a WAN brown-out).
	FaultShape FaultKind = "shape"
)

// FaultEvent is one entry of a scenario's fault schedule. Unused fields are
// ignored by kinds that do not need them.
type FaultEvent struct {
	Kind FaultKind     `json:"kind"`
	At   time.Duration `json:"at_ns"`
	For  time.Duration `json:"for_ns,omitempty"`
	// Count of churn victims or loss bursts.
	Count int `json:"count,omitempty"`
	// Fraction of the node population on the far side of a partition kind.
	Fraction float64       `json:"fraction,omitempty"`
	Loss     float64       `json:"loss,omitempty"`
	Gap      time.Duration `json:"gap_ns,omitempty"`
	Latency  time.Duration `json:"latency_ns,omitempty"`
}

// end reports when the event's weather is fully over.
func (e FaultEvent) end() time.Duration {
	switch e.Kind {
	case FaultLossBursts:
		n := e.Count
		if n < 1 {
			n = 1
		}
		return e.At + time.Duration(n)*e.For + time.Duration(n-1)*e.Gap
	default:
		return e.At + e.For
	}
}

func (e FaultEvent) validate() error {
	if e.At <= 0 {
		return fmt.Errorf("campaign: fault %q needs at_ns > 0", e.Kind)
	}
	switch e.Kind {
	case FaultChurn:
		if e.Count <= 0 || e.For <= 0 {
			return fmt.Errorf("campaign: churn needs count and for_ns")
		}
	case FaultPartition, FaultAsymmetric, FaultPartial:
		if e.Fraction <= 0 || e.Fraction >= 0.5 {
			return fmt.Errorf("campaign: %s fraction %v outside (0,0.5): the majority side must keep quorum", e.Kind, e.Fraction)
		}
		if e.For <= 0 {
			return fmt.Errorf("campaign: %s needs for_ns", e.Kind)
		}
	case FaultLossBursts:
		if e.Count <= 0 || e.For <= 0 || e.Loss <= 0 {
			return fmt.Errorf("campaign: loss-bursts needs count, for_ns and loss")
		}
	case FaultShape:
		if e.For <= 0 || (e.Latency <= 0 && e.Loss <= 0) {
			return fmt.Errorf("campaign: shape needs for_ns and latency_ns or loss")
		}
	default:
		return fmt.Errorf("campaign: unknown fault kind %q", e.Kind)
	}
	return nil
}

// Gates are the per-cell acceptance thresholds. Regressions and staleness
// violations always gate at zero; reconvergence is scenario-tuned.
type Gates struct {
	// ReconvergeWithin bounds how long after the last scheduled fault the
	// deployment may take until every up node serves a valid lease again
	// and all served group-clock intervals are mutually consistent.
	ReconvergeWithin time.Duration `json:"reconverge_within_ns"`
}

// Scenario declares one column of the campaign matrix: a topology template
// plus a fault schedule and gates. The node count is supplied per cell.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Orderer under every node; default instant (the sim-only total-order
	// oracle — the only protocol affordable at 1000 nodes). Network fault
	// kinds (partitions, loss, shape) need a wire orderer.
	Orderer order.Kind `json:"orderer,omitempty"`
	Links   Links      `json:"links"`
	Clocks  ClockPlan  `json:"clocks"`
	// Duration is the virtual runtime of the cell.
	Duration time.Duration `json:"duration_ns"`
	// RefreshEvery paces the lease-refresh rounds that stand in for client
	// load (default 2 ms).
	RefreshEvery time.Duration `json:"refresh_every_ns,omitempty"`
	// SampleEvery paces the monitor's lease sampling (default: RefreshEvery).
	SampleEvery time.Duration `json:"sample_every_ns,omitempty"`
	Faults      []FaultEvent  `json:"faults,omitempty"`
	Gates       Gates         `json:"gates"`
	// NodeCounts restricts this scenario to the given sizes, overriding the
	// matrix-wide axis.
	NodeCounts []int `json:"node_counts,omitempty"`
	// MaxNodes caps the cell size this scenario supports (wire orderers cap
	// far lower than the instant oracle). An axis count above the cap is a
	// matrix validation error, unless ClampNodes opts into an explicit clamp:
	// the cell then runs at MaxNodes with the requested size recorded in its
	// result (ClampedFrom). Never a silent cap: under-coverage is either
	// rejected or visible in BENCH_campaign.json.
	MaxNodes int `json:"max_nodes,omitempty"`
	// ClampNodes opts oversized cells into an explicit recorded clamp
	// instead of a validation error.
	ClampNodes bool `json:"clamp_nodes,omitempty"`
	// Seq and Totem tune the wire orderers; required for WAN cells whose
	// timers must stretch with the link delay.
	Seq   order.SeqTuning   `json:"seq,omitempty"`
	Totem order.TotemTuning `json:"totem,omitempty"`
	// MeanDelay declares the fabric's expected delivery delay (base latency
	// plus retransmission under the scenario's loss weather). It feeds
	// core.Config.MeanDelay, widening every lease's base margin: a node's
	// own lag estimator only learns about delivery lag on its next proposal,
	// so lossy high-latency fabrics must declare the delay they are built on.
	MeanDelay time.Duration `json:"mean_delay_ns,omitempty"`
}

func (s Scenario) refreshEvery() time.Duration {
	if s.RefreshEvery > 0 {
		return s.RefreshEvery
	}
	return 2 * time.Millisecond
}

func (s Scenario) sampleEvery() time.Duration {
	if s.SampleEvery > 0 {
		return s.SampleEvery
	}
	return s.refreshEvery()
}

// lastFaultEnd reports when the latest scheduled weather clears (zero with
// no faults).
func (s Scenario) lastFaultEnd() time.Duration {
	var last time.Duration
	for _, e := range s.Faults {
		if end := e.end(); end > last {
			last = end
		}
	}
	return last
}

// Validate checks the scenario.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("campaign: scenario without a name")
	}
	if s.Duration <= 0 {
		return fmt.Errorf("campaign: scenario %q needs duration_ns", s.Name)
	}
	if s.Gates.ReconvergeWithin <= 0 {
		return fmt.Errorf("campaign: scenario %q needs gates.reconverge_within_ns", s.Name)
	}
	if _, err := s.Links.Model(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	orderer := s.orderer()
	if _, err := order.ParseKind(string(orderer)); err != nil {
		return fmt.Errorf("campaign: scenario %q: %w", s.Name, err)
	}
	for _, e := range s.Faults {
		if err := e.validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		if e.end() >= s.Duration {
			return fmt.Errorf("campaign: scenario %q: fault %q runs past duration (gates need quiet tail)", s.Name, e.Kind)
		}
		if orderer == order.KindInstant {
			switch e.Kind {
			case FaultPartition, FaultAsymmetric, FaultPartial, FaultLossBursts, FaultShape:
				return fmt.Errorf("campaign: scenario %q: fault %q needs a wire orderer (instant has no network)", s.Name, e.Kind)
			}
		}
	}
	if end := s.lastFaultEnd(); end > 0 && end+s.Gates.ReconvergeWithin > s.Duration {
		return fmt.Errorf("campaign: scenario %q: duration leaves no room for reconvergence gate", s.Name)
	}
	if s.MaxNodes < 0 {
		return fmt.Errorf("campaign: scenario %q: max_nodes must be positive", s.Name)
	}
	if s.ClampNodes && s.MaxNodes == 0 {
		return fmt.Errorf("campaign: scenario %q: clamp_nodes needs max_nodes", s.Name)
	}
	return nil
}

// checkCounts rejects cell sizes above MaxNodes unless the scenario opts
// into an explicit clamp. This is the anti-silent-cap rule: a scenario must
// either accept the requested size, clamp it visibly (ClampedFrom in the
// cell and its result), or fail validation — never quietly run smaller.
func (s Scenario) checkCounts(counts []int) error {
	if s.MaxNodes == 0 || s.ClampNodes {
		return nil
	}
	for _, n := range counts {
		if n > s.MaxNodes {
			return fmt.Errorf("campaign: scenario %q: %d nodes exceeds max_nodes %d (set clamp_nodes for an explicit recorded clamp, or lower the count)", s.Name, n, s.MaxNodes)
		}
	}
	return nil
}

func (s Scenario) orderer() order.Kind {
	if s.Orderer == "" {
		return order.KindInstant
	}
	return s.Orderer
}

// Cell is one point of the campaign matrix.
type Cell struct {
	Scenario string `json:"scenario"`
	Nodes    int    `json:"nodes"`
	Seed     int64  `json:"seed"`
	// ClampedFrom records the originally requested node count when the
	// scenario's MaxNodes clamped this cell (zero otherwise). It rides into
	// the cell's Result so clamped coverage is visible in the artifacts.
	ClampedFrom int `json:"clamped_from,omitempty"`
}

// Matrix is the declarative sweep: every scenario × node count × seed.
type Matrix struct {
	Scenarios  []Scenario `json:"scenarios"`
	NodeCounts []int      `json:"node_counts"`
	Seeds      []int64    `json:"seeds"`
}

// Validate checks the matrix.
func (m Matrix) Validate() error {
	if len(m.Scenarios) == 0 {
		return fmt.Errorf("campaign: matrix has no scenarios")
	}
	seen := make(map[string]bool, len(m.Scenarios))
	for _, sc := range m.Scenarios {
		if err := sc.Validate(); err != nil {
			return err
		}
		if seen[sc.Name] {
			return fmt.Errorf("campaign: duplicate scenario %q", sc.Name)
		}
		seen[sc.Name] = true
		counts := sc.NodeCounts
		if len(counts) == 0 {
			counts = m.NodeCounts
		}
		if len(counts) == 0 {
			return fmt.Errorf("campaign: scenario %q has no node counts", sc.Name)
		}
		if err := sc.checkCounts(counts); err != nil {
			return err
		}
	}
	if len(m.Seeds) == 0 {
		return fmt.Errorf("campaign: matrix has no seeds")
	}
	return nil
}

// Cells expands the matrix into its cells, scenario-major, in declaration
// order — the sweep order is part of the campaign's determinism contract.
// Counts above a clamping scenario's MaxNodes run at MaxNodes with
// ClampedFrom set; when several axis counts clamp to the same size, only the
// first (smallest requested) cell per seed survives — duplicates would just
// rerun the identical deployment.
func (m Matrix) Cells() []Cell {
	var cells []Cell
	type point struct {
		scenario string
		nodes    int
		seed     int64
	}
	emitted := make(map[point]bool)
	for _, sc := range m.Scenarios {
		counts := sc.NodeCounts
		if len(counts) == 0 {
			counts = m.NodeCounts
		}
		for _, n := range counts {
			clampedFrom := 0
			if sc.ClampNodes && sc.MaxNodes > 0 && n > sc.MaxNodes {
				clampedFrom = n
				n = sc.MaxNodes
			}
			for _, seed := range m.Seeds {
				p := point{sc.Name, n, seed}
				if emitted[p] {
					continue
				}
				emitted[p] = true
				cells = append(cells, Cell{Scenario: sc.Name, Nodes: n, Seed: seed, ClampedFrom: clampedFrom})
			}
		}
	}
	return cells
}

// ScenarioByName finds a scenario in the matrix.
func (m Matrix) ScenarioByName(name string) (Scenario, bool) {
	for _, sc := range m.Scenarios {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// ParseMatrix loads a matrix from JSON. Durations are nanosecond integers
// (the *_ns fields); see EXPERIMENTS.md for a worked example.
func ParseMatrix(data []byte) (Matrix, error) {
	var m Matrix
	if err := json.Unmarshal(data, &m); err != nil {
		return Matrix{}, fmt.Errorf("campaign: parse matrix: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Matrix{}, err
	}
	return m, nil
}
