package campaign

import (
	"fmt"
	"time"
)

// Metrics are one cell's plot-ready measurements. Everything is derived
// from virtual time and deterministic counters: the same cell (scenario,
// nodes, seed) always produces identical metrics.
type Metrics struct {
	// Gate counters — the matrix passes only when the violation counters
	// are zero and reconvergence met its bound.
	Regressions         uint64 `json:"regressions"`
	StalenessViolations uint64 `json:"staleness_violations"`
	MonotonicityFixes   uint64 `json:"monotonicity_fixes"`
	// ReconvergeMS is how long after the last scheduled fault every up
	// node served a valid lease with mutually consistent intervals again
	// (0 with no faults).
	ReconvergeMS float64 `json:"reconverge_ms"`

	// Lease-plane quality.
	Samples     uint64  `json:"samples"`
	MaxBoundUS  float64 `json:"max_bound_us"`
	MeanBoundUS float64 `json:"mean_bound_us"`
	MaxSpreadUS float64 `json:"max_spread_us"`

	// Traffic and round counters, summed over nodes.
	Rounds        uint64 `json:"rounds"`
	Refreshes     uint64 `json:"refreshes"`
	CCSSent       uint64 `json:"ccs_sent"`
	Invalidations uint64 `json:"lease_invalidations"`
	ViewsEmitted  uint64 `json:"views_emitted"`
	NetDropped    uint64 `json:"net_dropped"`
}

// Result is one completed cell.
type Result struct {
	Scenario string `json:"scenario"`
	Nodes    int    `json:"nodes"`
	Seed     int64  `json:"seed"`
	// ClampedFrom is the originally requested node count when the
	// scenario's MaxNodes cap clamped this cell (zero when it ran at the
	// requested size). Recorded so clamped coverage never hides.
	ClampedFrom int     `json:"clamped_from,omitempty"`
	Orderer     string  `json:"orderer"`
	Metrics     Metrics `json:"metrics"`
	Pass        bool    `json:"pass"`
	// Failures lists every gate the cell missed (empty when Pass).
	Failures []string `json:"failures,omitempty"`
}

// monitor folds lease samples into gate counters. The staleness check is
// the load-generator's argument (see ctsload): the true group clock only
// advances, so the highest lower bound (GroupClock−Bound) ever served is a
// floor every later reading's upper bound must clear. Like ctsload, the
// comparison is happened-before only — a reading is checked against the
// floor recorded before its sample pass began, never against readings from
// the same instant on other nodes. Lease bounds are honest about each
// node's own timeline (margin, drift, measured ordering lag), but nodes
// that adopt rounds they did not propose have no lag measurement of their
// own, so simultaneous cross-node comparison would demand a worst-case
// bound the lease plane never promises.
type monitor struct {
	floor    time.Duration         // max of GroupClock−Bound from prior passes
	lastSeen map[int]time.Duration // per node: last GroupClock served
	m        Metrics
	// reconvergence bookkeeping
	faultEnd      time.Duration // absolute time the last fault clears
	reconvergedAt time.Duration // earliest all-serving sample after faultEnd
}

func newMonitor() *monitor {
	return &monitor{lastSeen: make(map[int]time.Duration), reconvergedAt: -1}
}

// sample reads every node's lease between kernel steps. One call is one
// pass: readings are compared against the floor as of the previous pass
// (the happened-before discipline above), then this pass's lower bounds
// are folded into the floor for the next one.
func (mo *monitor) sample(d *deployment, now time.Duration) {
	var (
		allUp    = true
		okCount  int
		passMax  = mo.floor // highest GroupClock−Bound seen this pass
		minClock time.Duration
		maxClock time.Duration
	)
	for i, nd := range d.nodes {
		r, ok := nd.svc.LeaseRead()
		if !ok {
			if nd.up {
				allUp = false
			}
			continue
		}
		mo.m.Samples++
		if last, seen := mo.lastSeen[i]; seen && r.GroupClock < last {
			mo.m.Regressions++
		}
		mo.lastSeen[i] = r.GroupClock
		if r.GroupClock+r.Bound < mo.floor {
			mo.m.StalenessViolations++
		}
		if lo := r.GroupClock - r.Bound; lo > passMax {
			passMax = lo
		}
		bound := float64(r.Bound) / float64(time.Microsecond)
		if bound > mo.m.MaxBoundUS {
			mo.m.MaxBoundUS = bound
		}
		mo.m.MeanBoundUS += bound // normalized in finish
		if okCount == 0 || r.GroupClock < minClock {
			minClock = r.GroupClock
		}
		if okCount == 0 || r.GroupClock > maxClock {
			maxClock = r.GroupClock
		}
		okCount++
	}
	mo.floor = passMax
	if okCount > 1 {
		if spread := float64(maxClock-minClock) / float64(time.Microsecond); spread > mo.m.MaxSpreadUS {
			mo.m.MaxSpreadUS = spread
		}
	}
	// Reconvergence: the first sample past the fault schedule where every
	// schedule-up node serves a valid lease again. Faults invalidate leases
	// through view changes (epoch bump), so a post-fault ok reading is
	// evidence the node rejoined, regained a primary component, and
	// republished — not a leftover pre-fault lease.
	if now >= mo.faultEnd && mo.reconvergedAt < 0 && allUp && okCount > 0 {
		mo.reconvergedAt = now
	}
}

func (mo *monitor) finish() {
	if mo.m.Samples > 0 {
		mo.m.MeanBoundUS /= float64(mo.m.Samples)
	}
}

// Run executes one cell: build the deployment, arm the schedule, drive
// refresh rounds, sample leases, gather counters, and gate.
func Run(sc Scenario, nodes int, seed int64) (Result, error) {
	d, err := build(sc, nodes, seed)
	if err != nil {
		return Result{}, err
	}
	defer d.close()

	res := Result{Scenario: sc.Name, Nodes: nodes, Seed: seed, Orderer: string(d.orderer)}
	k := d.k
	start := k.Now()
	end := start + sc.Duration

	mo := newMonitor()
	// With no faults the whole run must stay consistent, so the clock on
	// the reconvergence gate starts immediately.
	mo.faultEnd = start
	if last := sc.lastFaultEnd(); last > 0 {
		mo.faultEnd = start + last
	}
	d.installSchedule(start)

	// Prime the lease plane: one refresh wave, then wait until every node
	// serves, so the monitor starts from a converged baseline. The budget
	// scales with the refresh cadence — WAN scenarios pace refreshes (and
	// thus rounds) hundreds of ms apart.
	d.refreshTick()
	primeDeadline := k.Now() + 200*time.Millisecond + 20*sc.refreshEvery()
	for k.Now() < primeDeadline {
		k.RunFor(sc.refreshEvery())
		d.refreshTick()
		if primed(d) {
			break
		}
	}
	if !primed(d) {
		return Result{}, fmt.Errorf("campaign: %q/%d: lease plane did not prime", sc.Name, nodes)
	}

	// Main loop: refresh cadence and monitor sampling between kernel steps.
	refreshEvery := sc.refreshEvery()
	sampleEvery := sc.sampleEvery()
	var tick func()
	tick = func() {
		d.refreshTick()
		if k.Now()+refreshEvery <= end {
			k.After(refreshEvery, tick)
		}
	}
	k.After(refreshEvery, tick)
	for k.Now() < end {
		step := sampleEvery
		if left := end - k.Now(); left < step {
			step = left
		}
		k.RunFor(step)
		mo.sample(d, k.Now())
	}
	mo.finish()

	res.Metrics = mo.m
	if mo.reconvergedAt >= 0 {
		res.Metrics.ReconvergeMS = float64(mo.reconvergedAt-mo.faultEnd) / float64(time.Millisecond)
	}
	gather(d, &res.Metrics)
	res.Pass, res.Failures = gate(sc, mo, res.Metrics)
	return res, nil
}

// primed reports whether every node serves a lease.
func primed(d *deployment) bool {
	for _, nd := range d.nodes {
		if _, ok := nd.svc.LeaseRead(); !ok {
			return false
		}
	}
	return true
}

// gather sums the deployment's obs-registry counters into the metrics.
func gather(d *deployment, m *Metrics) {
	for _, s := range d.rec.Samples() {
		switch s.Name {
		case "core.rounds_initiated", "core.rounds_observed":
			m.Rounds += s.Value
		case "core.lease_refreshes":
			m.Refreshes += s.Value
		case "core.ccs_sent":
			m.CCSSent += s.Value
		case "core.lease_invalidations":
			m.Invalidations += s.Value
		case "core.monotonicity_fixes":
			m.MonotonicityFixes += s.Value
		case "gcs.views_emitted":
			m.ViewsEmitted += s.Value
		}
	}
	_, _, dropped := d.net.Stats()
	m.NetDropped = dropped
}

// gate applies the per-scenario self-gates.
func gate(sc Scenario, mo *monitor, m Metrics) (bool, []string) {
	var fails []string
	if m.Regressions > 0 {
		fails = append(fails, fmt.Sprintf("%d group-clock regressions (want 0)", m.Regressions))
	}
	if m.StalenessViolations > 0 {
		fails = append(fails, fmt.Sprintf("%d staleness-bound violations (want 0)", m.StalenessViolations))
	}
	if m.MonotonicityFixes > 0 {
		fails = append(fails, fmt.Sprintf("%d monotonicity fixes (want 0: no replica proposed backwards)", m.MonotonicityFixes))
	}
	if mo.reconvergedAt < 0 {
		fails = append(fails, "never reconverged after the last fault")
	} else if rec := time.Duration(m.ReconvergeMS * float64(time.Millisecond)); rec > sc.Gates.ReconvergeWithin {
		fails = append(fails, fmt.Sprintf("reconverged in %.1fms, gate %v", m.ReconvergeMS, sc.Gates.ReconvergeWithin))
	}
	return len(fails) == 0, fails
}
