package cts_test

import (
	"strings"
	"testing"
	"time"

	"cts"
	"cts/internal/hwclock"
	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
)

// TestFacadeTimeServe brings up a three-replica group with the external
// serving frontend enabled and exercises the whole plane end to end: the
// background refresher keeps leases alive over the simulated stack, the
// UDP frontends answer real-socket queries from those leases, and the
// public client extrapolates, caches, and never observes a regression.
func TestFacadeTimeServe(t *testing.T) {
	k := sim.NewKernel(11)
	net := simnet.NewNetwork(k, nil)
	ring := []transport.NodeID{1, 2, 3}
	offsets := map[transport.NodeID]time.Duration{1: 0, 2: 3 * time.Second, 3: 9 * time.Second}

	svcs := make([]*cts.Service, 0, 3)
	for _, id := range ring {
		svc, err := cts.New(
			cts.WithRuntime(k),
			cts.WithTransport(net.Endpoint(id)),
			cts.WithRingMembers(ring),
			cts.WithClock(hwclock.NewSim(k.Now, hwclock.WithOffset(offsets[id]))),
			cts.WithTimeServe(cts.TimeServeConfig{
				Addr:         "127.0.0.1:0",
				LeaseWindow:  time.Minute,
				RefreshEvery: 50 * time.Millisecond,
			}),
		)
		if err != nil {
			t.Fatalf("cts.New(P%d): %v", id, err)
		}
		if err := svc.Start(); err != nil {
			t.Fatalf("Start(P%d): %v", id, err)
		}
		svcs = append(svcs, svc)
	}
	defer func() {
		for _, svc := range svcs {
			svc.Stop()
		}
	}()

	// Let the ring form and the refresher run a few rounds of virtual time.
	k.RunFor(2 * time.Second)

	targets := make([]string, 0, len(svcs))
	for i, svc := range svcs {
		addr := svc.TimeServeAddr()
		if addr == "" {
			t.Fatalf("replica %d: no timeserve address", i)
		}
		targets = append(targets, addr)
		if r, ok := svc.LeaseRead(); !ok {
			t.Fatalf("replica %d holds no lease after refresh rounds", i)
		} else if r.Bound <= 0 {
			t.Fatalf("replica %d lease has non-positive bound %v", i, r.Bound)
		}
	}

	cli, err := cts.NewTimeServeClient(cts.TimeServeClientConfig{
		Targets:  targets,
		Timeout:  time.Second,
		CacheFor: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var prev cts.TimeServeReading
	for i := 0; i < 30; i++ {
		r, err := cli.Now()
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if i > 0 && r.GroupClock < prev.GroupClock {
			t.Fatalf("query %d regressed: %v < %v", i, r.GroupClock, prev.GroupClock)
		}
		prev = r
		if i%10 == 0 {
			k.RunFor(100 * time.Millisecond) // advance group time mid-stream
		}
	}

	// The replicas' direct lease reads stay monotone per replica too.
	for i, svc := range svcs {
		a, ok1 := svc.LeaseRead()
		b, ok2 := svc.LeaseRead()
		if !ok1 || !ok2 {
			t.Fatalf("replica %d lease vanished", i)
		}
		if b.GroupClock < a.GroupClock {
			t.Fatalf("replica %d regressed: %v < %v", i, b.GroupClock, a.GroupClock)
		}
	}
}

// TestStartFailureThenStop pins the shutdown contract ctsnode relies on:
// when a late Start phase fails (here an invalid ServeIO), Start tears the
// stack down itself, and the caller's deferred Stop must be a harmless
// no-op — not a second teardown that double-closes the invocation thread.
func TestStartFailureThenStop(t *testing.T) {
	k := sim.NewKernel(7)
	net := simnet.NewNetwork(k, nil)
	ring := []transport.NodeID{1, 2}
	svc, err := cts.New(
		cts.WithRuntime(k),
		cts.WithTransport(net.Endpoint(1)),
		cts.WithRingMembers(ring),
		cts.WithClock(hwclock.NewSim(k.Now)),
		cts.WithTimeServe(cts.TimeServeConfig{
			Addr:    "127.0.0.1:0",
			ServeIO: "bogus",
		}),
	)
	if err != nil {
		t.Fatalf("cts.New: %v", err)
	}
	err = svc.Start()
	if err == nil {
		t.Fatal("Start with ServeIO=bogus succeeded, want error")
	}
	if !strings.Contains(err.Error(), `unknown I/O mode "bogus"`) {
		t.Fatalf("Start error = %v, want the ParseIOMode error", err)
	}
	svc.Stop() // the deferred Stop every caller holds
	svc.Stop() // and Stop is documented idempotent
	// Drain the posted teardown work; before Stop was idempotent this
	// panicked with "close of closed channel" on the loop.
	k.RunFor(time.Second)
}
