#!/bin/sh
# CI gate: formatting, vet, the project linter, build, race-enabled tests.
# Same steps as `make check`, runnable where make is absent.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

# All rules run (no -rules subsetting here, so CI can never drift from the
# full rule set); -v records per-rule wall time in the CI log. Baseline
# justifications are enforced by the lint.allow parser itself (non-trivially
# short, stale entries fail), so a bare `# why` can't slip through review.
echo "== ctslint =="
go run ./cmd/ctslint -v

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race -count=1 ./...

echo "== go test -race (experiments under -orderer=seq) =="
# The experiment suite reruns over the leader-sequencer orderer; tests that
# pin Totem wire behavior (token timing, suppression counts, rotation)
# skip themselves via totemOnly.
go test -race -count=1 ./internal/experiment -orderer=seq

echo "== ctsbench fig5 (BENCH_fig5.json) =="
go run ./cmd/ctsbench -exp fig5 -trace fig5.trace.jsonl -json BENCH_fig5.json

echo "== ctsbench fig5concurrent (BENCH_fig5_concurrent.json) =="
# Self-gating: exits nonzero unless concurrent readers coalesced rounds and
# their mean per-read overhead is at most half the single-reader overhead.
go run ./cmd/ctsbench -exp fig5concurrent -jsonConcurrent BENCH_fig5_concurrent.json

echo "== ctsload smoke: lease invariants under race (BENCH_timeserve_race.json) =="
go run -race ./cmd/ctsload -inprocess -duration 5s -min-qps 100000 -json BENCH_timeserve_race.json

echo "== ctsload batched kernel I/O (BENCH_timeserve.json) =="
# Plain-mode run over the recvmmsg/sendmmsg path with 8-datagram bursts;
# gates throughput, server syscalls per query, and allocations per batched
# serve cycle.
go run ./cmd/ctsload -inprocess -duration 5s -dgrams 8 -min-qps 600000 -max-syscalls-per-query 0.25 -max-allocs-per-op 0 -json BENCH_timeserve.json

echo "== ctsload forced-sequential fallback (-serve-io seq) =="
# Batching force-disabled end to end: the sequential path must still hold
# the invariants and meaningful throughput.
go run ./cmd/ctsload -inprocess -duration 2s -dgrams 4 -serve-io seq -min-qps 100000 -json ""

echo "== ctscampaign smoke (BENCH_campaign_smoke.json) =="
# Two 100-node campaign cells, each self-gating on zero group-clock
# regressions, zero staleness-bound violations and bounded reconvergence.
go run ./cmd/ctscampaign -scenarios churn-storm,slow-clocks -nodes 100 -json BENCH_campaign_smoke.json

echo "== ctsbench federation sweep (BENCH_federation.json) =="
# Multi-group federation (E17): line topologies at 2/4/8 groups plus an
# inter-group sever/heal cell. Self-gating — zero regressions, zero
# cross-group staleness violations, seam skew under the ceiling.
go run ./cmd/ctsbench -exp federation -jsonFederation BENCH_federation.json

echo "== ctsload federated migrating clients =="
# Two federated in-process groups; each worker migrates across them every
# exchange, checking the global staleness floor and the (group, node)-keyed
# regression floors end to end over real UDP.
go run ./cmd/ctsload -inprocess -duration 2s -fed-groups 2 -min-qps 100000 -json ""

echo "CI checks passed."
