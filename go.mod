module cts

go 1.22
