// Failover: the clock roll-back problem of §1, and how the consistent time
// service eliminates it.
//
// A passively replicated server answers clock reads. The backup's physical
// clock runs 5 seconds BEHIND the primary's. When the primary crashes:
//
//   - under the primary/backup baseline ([9], [3]) the next reading comes
//     from the new primary's raw clock and ROLLS BACK ≈5 seconds;
//
//   - under the consistent time service the new primary continues the group
//     clock from its offset, and the reading stays monotone.
//
//     go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"cts/internal/campaign"
	"cts/internal/experiment"
	"cts/internal/replication"
	"cts/internal/rpc"
)

func main() {
	for _, mode := range []experiment.TimeMode{
		experiment.ModePrimaryBackup, experiment.ModeCTS,
	} {
		name := "primary/backup baseline"
		if mode == experiment.ModeCTS {
			name = "consistent time service"
		}
		fmt.Printf("=== %s ===\n", name)

		cluster, err := experiment.NewCluster(experiment.ClusterConfig{
			Seed: 7,
			Topology: campaign.Explicit(
				experiment.ClockSpec{Offset: 30 * time.Second}, // primary P1
				experiment.ClockSpec{Offset: 25 * time.Second}, // backup P2: 5s behind
				experiment.ClockSpec{Offset: 25 * time.Second}, // backup P3
			),
			Style:           replication.Passive,
			Mode:            mode,
			CheckpointEvery: 2,
		})
		if err != nil {
			log.Fatal(err)
		}

		read := func(label string) time.Duration {
			var v time.Duration
			got := false
			cluster.Client.Invoke(experiment.MethodCurrentTime, nil, func(r rpc.Reply) {
				got = true
				if r.Err != nil {
					log.Fatal(r.Err)
				}
				v, _ = experiment.DecodeTimeval(r.Body)
			})
			cluster.RunUntil(10*time.Second, func() bool { return got })
			fmt.Printf("  %-22s %v\n", label, v)
			return v
		}

		var before time.Duration
		for i := 1; i <= 4; i++ {
			before = read(fmt.Sprintf("read %d:", i))
		}
		fmt.Println("  -- crash the primary (P1) --")
		cluster.Crash(1)
		after := read("read after failover:")

		jump := after - before
		switch {
		case jump < 0:
			fmt.Printf("  clock ROLLED BACK by %v\n\n", -jump)
		case jump > time.Second:
			fmt.Printf("  clock JUMPED FORWARD by %v\n\n", jump)
		default:
			fmt.Printf("  clock advanced normally by %v — monotone across failover\n\n", jump)
		}
	}
}
