// Multigroup: causal group clocks across replica groups — the extension the
// paper sketches in its conclusion (§5): "includes the value of the
// consistent group clock as a timestamp in the user messages multicast to
// the different groups".
//
// Two replicated services share one Totem ring: an "orders" group whose
// clocks run 100 seconds ahead, and an "audit" group whose clocks are far
// behind. A client reads a timestamp from orders and then (stamped) invokes
// audit. Without the timestamp, audit's reading would precede the orders
// reading it causally depends on; with it, audit's group clock is lifted
// past the timestamp before the read executes.
//
//	go run ./examples/multigroup
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"cts"
	"cts/internal/gcs"
	"cts/internal/hwclock"
	"cts/internal/rpc"
	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
)

const (
	ordersGroup cts.GroupID = 101
	auditGroup  cts.GroupID = 102
)

type timeApp struct{ svc *cts.Service }

func (a *timeApp) Invoke(ctx *cts.Ctx, method string, body []byte) []byte {
	v := a.svc.Gettimeofday(ctx)
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, uint64(v))
	return out
}
func (a *timeApp) Snapshot() []byte { return nil }
func (a *timeApp) Restore([]byte)   {}

func main() {
	k := sim.NewKernel(5)
	net := simnet.NewNetwork(k, nil)
	ring := []transport.NodeID{0, 1, 2, 3, 4}
	stacks := make(map[transport.NodeID]*gcs.Stack)
	for _, id := range ring {
		s, err := gcs.New(gcs.Config{Runtime: k, Transport: net.Endpoint(id),
			Members: ring, Bootstrap: true})
		if err != nil {
			log.Fatal(err)
		}
		stacks[id] = s
	}
	addReplica := func(id transport.NodeID, gid cts.GroupID, offset time.Duration) {
		app := &timeApp{}
		svc, err := cts.New(
			cts.WithRuntime(k),
			cts.WithStack(stacks[id]),
			cts.WithGroup(gid),
			cts.WithStyle(cts.Active),
			cts.WithApplication(app),
			cts.WithClock(hwclock.NewSim(k.Now, hwclock.WithOffset(offset))),
		)
		if err != nil {
			log.Fatal(err)
		}
		app.svc = svc
		if err := svc.Start(); err != nil {
			log.Fatal(err)
		}
	}
	addReplica(1, ordersGroup, 100*time.Second) // orders clocks: +100s
	addReplica(2, ordersGroup, 100*time.Second)
	addReplica(3, auditGroup, 0) // audit clocks: +0s
	addReplica(4, auditGroup, 0)

	newClient := func(cg, sg cts.GroupID) *rpc.Client {
		c, err := rpc.NewClient(rpc.ClientConfig{Runtime: k, Stack: stacks[0],
			ClientGroup: cg, ServerGroup: sg})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	orders := newClient(901, ordersGroup)
	audit := newClient(902, auditGroup)
	for _, s := range stacks {
		s.Start()
	}
	k.RunFor(3 * time.Millisecond)

	read := func(c *rpc.Client, ts time.Duration) (time.Duration, time.Duration) {
		var v, stamp time.Duration
		got := false
		c.InvokeStamped("read", nil, ts, func(r rpc.Reply) {
			got = true
			if r.Err != nil {
				log.Fatal(r.Err)
			}
			v = time.Duration(binary.BigEndian.Uint64(r.Body))
			stamp = r.Timestamp
		})
		for !got {
			k.RunFor(200 * time.Microsecond)
		}
		return v, stamp
	}

	aVal, _ := read(audit, 0)
	fmt.Printf("audit clock before causal contact:  %v\n", aVal)
	oVal, oStamp := read(orders, 0)
	fmt.Printf("orders clock (reply timestamp %v):  %v\n", oStamp, oVal)

	unstamped, _ := read(audit, 0)
	fmt.Printf("audit, unstamped invocation:        %v  (precedes the orders reading!)\n", unstamped)

	stamped, _ := read(audit, oStamp)
	fmt.Printf("audit, stamped with orders' clock:  %v  (causally after %v: %v)\n",
		stamped, oVal, stamped > oVal)
}
