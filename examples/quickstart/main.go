// Quickstart: a three-way actively replicated server whose clock reads are
// rendered deterministic by the consistent time service.
//
// The example assembles the lower stack by hand on a simulated network —
// discrete-event kernel, simulated Ethernet, Totem ring, group layer — and
// builds each replica through the public cts facade, so you can see how the
// pieces fit.
// Replicas get physical clocks that disagree by seconds, yet every replica
// observes the identical sequence of group clock values, and the client's
// reads are monotone.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"cts"
	"cts/internal/gcs"
	"cts/internal/hwclock"
	"cts/internal/rpc"
	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
)

const (
	serverGroup cts.GroupID = 100
	clientGroup cts.GroupID = 900
)

// echoTimeApp is the replicated application: CurrentTime returns the group
// clock read through the consistent time service.
type echoTimeApp struct {
	name     string
	svc      *cts.Service
	readings []time.Duration
}

func (a *echoTimeApp) Invoke(ctx *cts.Ctx, method string, body []byte) []byte {
	v := a.svc.Gettimeofday(ctx)
	a.readings = append(a.readings, v)
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, uint64(v))
	return out
}
func (a *echoTimeApp) Snapshot() []byte { return nil }
func (a *echoTimeApp) Restore([]byte)   {}

func main() {
	// A deterministic simulation kernel and a simulated 100 Mb/s Ethernet.
	k := sim.NewKernel(42)
	net := simnet.NewNetwork(k, nil)

	// Four processors: the client on P0, replicas on P1..P3.
	ring := []transport.NodeID{0, 1, 2, 3}
	stacks := make(map[transport.NodeID]*gcs.Stack)
	for _, id := range ring {
		s, err := gcs.New(gcs.Config{
			Runtime:   k,
			Transport: net.Endpoint(id),
			Members:   ring,
			Bootstrap: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		stacks[id] = s
	}

	// Replicas with physical clocks that disagree by SECONDS.
	offsets := map[transport.NodeID]time.Duration{
		1: 0, 2: 5 * time.Second, 3: 15 * time.Second,
	}
	apps := make(map[transport.NodeID]*echoTimeApp)
	for _, id := range ring[1:] {
		clock := hwclock.NewSim(k.Now, hwclock.WithOffset(offsets[id]))
		app := &echoTimeApp{name: id.String()}
		svc, err := cts.New(
			cts.WithRuntime(k),
			cts.WithStack(stacks[id]),
			cts.WithGroup(serverGroup),
			cts.WithStyle(cts.Active),
			cts.WithApplication(app),
			cts.WithClock(clock),
		)
		if err != nil {
			log.Fatal(err)
		}
		app.svc = svc
		if err := svc.Start(); err != nil {
			log.Fatal(err)
		}
		apps[id] = app
	}

	client, err := rpc.NewClient(rpc.ClientConfig{
		Runtime:     k,
		Stack:       stacks[0],
		ClientGroup: clientGroup,
		ServerGroup: serverGroup,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, s := range stacks {
		s.Start()
	}
	k.RunFor(3 * time.Millisecond) // ring forms, group views settle

	fmt.Println("physical clocks: P1=+0s  P2=+5s  P3=+15s")
	fmt.Println()
	done := 0
	var invoke func()
	invoke = func() {
		client.Invoke("CurrentTime", nil, func(r rpc.Reply) {
			if r.Err != nil {
				log.Fatal(r.Err)
			}
			v := time.Duration(binary.BigEndian.Uint64(r.Body))
			fmt.Printf("read %d: group clock = %-14v (virtual time %v, replied by P%d)\n",
				done+1, v, k.Now().Round(time.Microsecond), r.Replica)
			done++
			if done < 8 {
				invoke()
			}
		})
	}
	invoke()
	for k.Now() < 5*time.Second && done < 8 {
		k.RunFor(time.Millisecond)
	}

	fmt.Println("\nper-replica recorded group clock values (must be identical):")
	for _, id := range ring[1:] {
		fmt.Printf("  %v: %v\n", id, apps[id].readings)
	}
	same := true
	for i := range apps[1].readings {
		if apps[1].readings[i] != apps[2].readings[i] ||
			apps[2].readings[i] != apps[3].readings[i] {
			same = false
		}
	}
	fmt.Printf("\nconsistent across replicas: %v\n", same)
}
