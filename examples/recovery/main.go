// Recovery: integrating a new clock into a running group (§3.2).
//
// Two replicas serve consistent clock reads; a third replica then joins with
// a physical clock 200 seconds in the future. The replication infrastructure
// transfers state at the GET_STATE synchronization point, and the consistent
// time service takes its special round of clock synchronization immediately
// before the checkpoint, so the newcomer's wild clock never disturbs the
// group clock: readings stay monotone and the newcomer answers consistently.
//
//	go run ./examples/recovery
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"cts/internal/campaign"
	"cts/internal/experiment"
	"cts/internal/replication"
	"cts/internal/rpc"
)

func main() {
	cluster, err := experiment.NewCluster(experiment.ClusterConfig{
		Seed: 11,
		Topology: campaign.Explicit(
			experiment.ClockSpec{Offset: 0},
			experiment.ClockSpec{Offset: 2 * time.Second},
		),
		Style:   replication.Active,
		Mode:    experiment.ModeCTS,
		Observe: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	read := func(label string) time.Duration {
		var v time.Duration
		got := false
		cluster.Client.Invoke(experiment.MethodReadSequence,
			binary.BigEndian.AppendUint32(nil, 1), func(r rpc.Reply) {
				got = true
				if r.Err != nil {
					log.Fatal(r.Err)
				}
				v, _ = experiment.DecodeTimeval(r.Body)
			})
		cluster.RunUntil(10*time.Second, func() bool { return got })
		fmt.Printf("  %-26s %v\n", label, v)
		return v
	}

	fmt.Println("two replicas, physical clocks +0s and +2s:")
	var before time.Duration
	for i := 1; i <= 3; i++ {
		before = read(fmt.Sprintf("read %d:", i))
	}

	fmt.Println("\njoining replica P3 with clock +200s (state transfer + special round):")
	id, err := cluster.AddRecoveringReplica(experiment.ClockSpec{Offset: 200 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	live := false
	cluster.RunUntil(10*time.Second, func() bool {
		cluster.K.Post(func() { live = cluster.Mgrs[id].Live() })
		cluster.K.RunFor(50 * time.Microsecond)
		return live
	})
	fmt.Printf("  replica %v live after state transfer\n", id)

	fmt.Println("\nreads after the join:")
	var after time.Duration
	for i := 1; i <= 3; i++ {
		after = read(fmt.Sprintf("read %d:", i))
	}

	fmt.Printf("\nmonotone across recovery: %v (last before %v ≤ first after)\n",
		after >= before, before)
	var specials uint64
	cluster.K.Post(func() {
		for _, s := range cluster.Obs.Samples() {
			if s.Name == "core.special_rounds" {
				specials += s.Value
			}
		}
	})
	cluster.K.RunFor(time.Millisecond)
	fmt.Printf("special clock-synchronization rounds taken: %d\n", specials)
	fmt.Printf("newcomer's readings match the group: %v\n",
		len(cluster.Apps[id].Readings) > 0)
}
