// Driftcontrol: the drift-compensation strategies of §3.3.
//
// The group clock runs slightly slower than real time (Figure 6(c)) because
// each round's decided value is based on a physical reading taken before the
// round's ordering delay. This example measures the accumulated lag over
// 1,500 rounds for the three strategies the paper describes:
//
//   - none:       the plain algorithm; the lag grows steadily
//
//   - mean-delay: add an estimate of the per-round delay to every offset
//
//   - external:   nudge each proposal toward an NTP/GPS-like reference
//     (transient skew, no drift)
//
//     go run ./examples/driftcontrol
package main

import (
	"fmt"
	"log"

	"cts"
	"cts/internal/experiment"
)

func main() {
	const rounds = 1500
	res, err := experiment.RunDrift(21, rounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("group-clock lag behind real time after %d rounds (%v of real time):\n\n",
		rounds, res.RealSpan)
	for _, comp := range []cts.Compensation{
		cts.CompNone, cts.CompMeanDelay, cts.CompExternal,
	} {
		lag := res.LagPerMode[comp]
		perRound := lag / rounds
		fmt.Printf("  %-12s lag %-14v (%v per round)\n", comp, lag, perRound)
	}
	fmt.Println("\nmean-delay compensation is approximate (§3.3: \"can significantly")
	fmt.Println("reduce the drift but is necessarily only approximate\"); the external")
	fmt.Println("reference bounds the error without accumulating it.")
}
