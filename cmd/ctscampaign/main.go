// Command ctscampaign runs simulation campaigns: a declarative matrix of
// scenario × node count × seed cells, each deploying 8–1000 simulated
// replicas under a scripted fault schedule and self-gating on the time
// service's invariants (no group-clock regression, no staleness-bound
// violation, bounded reconvergence after the last fault). Everything runs
// in virtual time, so cells are deterministic: the same matrix and seeds
// produce byte-identical BENCH_campaign.json metrics on every run.
//
// Usage:
//
//	ctscampaign -list                          # show the scenario catalog
//	ctscampaign                                # builtin matrix at 100 nodes
//	ctscampaign -scenarios churn-storm -nodes 1000 -seeds 1,2,3
//	ctscampaign -matrix sweep.json -csv campaign.csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cts/internal/campaign"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list the scenario catalog and exit")
		matrixF   = flag.String("matrix", "", "JSON matrix file (empty = builtin catalog)")
		scenarios = flag.String("scenarios", "", "comma-separated scenario subset (empty = all)")
		nodes     = flag.String("nodes", "100", "comma-separated node counts for the matrix axis")
		seeds     = flag.String("seeds", "2003", "comma-separated simulation seeds")
		jsonOut   = flag.String("json", "BENCH_campaign.json", "write per-cell results here as JSON (empty disables)")
		csvOut    = flag.String("csv", "", "also write plot-ready CSV here (empty disables)")
	)
	flag.Parse()

	if err := run(*list, *matrixF, *scenarios, *nodes, *seeds, *jsonOut, *csvOut); err != nil {
		fmt.Fprintln(os.Stderr, "ctscampaign:", err)
		os.Exit(1)
	}
}

func run(list bool, matrixF, scenarios, nodes, seeds, jsonOut, csvOut string) error {
	m, err := loadMatrix(matrixF, nodes, seeds)
	if err != nil {
		return err
	}
	if scenarios != "" {
		if m, err = filterScenarios(m, scenarios); err != nil {
			return err
		}
	}
	if list {
		for _, sc := range m.Scenarios {
			fmt.Printf("%-18s orderer=%-7s %s\n", sc.Name, string(sc.Orderer), sc.Description)
		}
		return nil
	}
	if err := m.Validate(); err != nil {
		return err
	}

	cells := m.Cells()
	results := make([]campaign.Result, 0, len(cells))
	failed := 0
	for _, cell := range cells {
		sc, ok := m.ScenarioByName(cell.Scenario)
		if !ok {
			return fmt.Errorf("matrix names unknown scenario %q", cell.Scenario)
		}
		if cell.ClampedFrom > 0 {
			fmt.Printf("%-18s clamping %d -> %d nodes (scenario max_nodes)\n",
				cell.Scenario, cell.ClampedFrom, cell.Nodes)
		}
		res, err := campaign.Run(sc, cell.Nodes, cell.Seed)
		if err != nil {
			return fmt.Errorf("%s/n=%d/seed=%d: %w", cell.Scenario, cell.Nodes, cell.Seed, err)
		}
		res.ClampedFrom = cell.ClampedFrom
		results = append(results, res)
		status := "pass"
		if !res.Pass {
			status = "FAIL"
			failed++
		}
		clamped := ""
		if res.ClampedFrom > 0 {
			clamped = fmt.Sprintf(" (clamped from %d)", res.ClampedFrom)
		}
		fmt.Printf("%-18s n=%-5d seed=%-6d %s  reconverge=%.1fms bound(max/mean)=%.0f/%.0fµs rounds=%d dropped=%d%s\n",
			res.Scenario, res.Nodes, res.Seed, status, res.Metrics.ReconvergeMS,
			res.Metrics.MaxBoundUS, res.Metrics.MeanBoundUS, res.Metrics.Rounds, res.Metrics.NetDropped, clamped)
		for _, f := range res.Failures {
			fmt.Printf("    gate: %s\n", f)
		}
	}

	if jsonOut != "" {
		if err := writeJSON(jsonOut, results); err != nil {
			return fmt.Errorf("write %s: %w", jsonOut, err)
		}
		fmt.Printf("campaign results -> %s\n", jsonOut)
	}
	if csvOut != "" {
		if err := writeCSV(csvOut, results); err != nil {
			return fmt.Errorf("write %s: %w", csvOut, err)
		}
		fmt.Printf("campaign CSV -> %s\n", csvOut)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d cells failed their gates", failed, len(cells))
	}
	fmt.Printf("all %d cells passed their gates\n", len(cells))
	return nil
}

// loadMatrix builds the campaign matrix from a file or the builtin catalog.
func loadMatrix(matrixF, nodes, seeds string) (campaign.Matrix, error) {
	if matrixF != "" {
		data, err := os.ReadFile(matrixF)
		if err != nil {
			return campaign.Matrix{}, err
		}
		return campaign.ParseMatrix(data)
	}
	counts, err := parseInts(nodes)
	if err != nil {
		return campaign.Matrix{}, fmt.Errorf("-nodes: %w", err)
	}
	seedList, err := parseInt64s(seeds)
	if err != nil {
		return campaign.Matrix{}, fmt.Errorf("-seeds: %w", err)
	}
	return campaign.BuiltinMatrix(counts, seedList), nil
}

// filterScenarios restricts the matrix to a named subset, listing the
// available names when one does not exist.
func filterScenarios(m campaign.Matrix, csv string) (campaign.Matrix, error) {
	keep := make([]campaign.Scenario, 0, len(m.Scenarios))
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		sc, ok := m.ScenarioByName(name)
		if !ok {
			names := make([]string, len(m.Scenarios))
			for i, s := range m.Scenarios {
				names[i] = s.Name
			}
			return campaign.Matrix{}, fmt.Errorf("unknown scenario %q; available: %s",
				name, strings.Join(names, ", "))
		}
		keep = append(keep, sc)
	}
	m.Scenarios = keep
	return m, nil
}

// writeJSON emits the per-cell results. Every row carries its scenario name
// and seed; nothing in the file depends on wall-clock time, so reruns of the
// same matrix are byte-identical.
func writeJSON(path string, results []campaign.Result) error {
	out := struct {
		Results []campaign.Result `json:"results"`
	}{Results: results}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// writeCSV emits one plot-ready row per cell.
func writeCSV(path string, results []campaign.Result) error {
	var b strings.Builder
	b.WriteString("scenario,nodes,clamped_from,seed,orderer,pass,regressions,staleness_violations," +
		"monotonicity_fixes,reconverge_ms,samples,max_bound_us,mean_bound_us,max_spread_us," +
		"rounds,refreshes,ccs_sent,lease_invalidations,views_emitted,net_dropped\n")
	for _, r := range results {
		m := r.Metrics
		fmt.Fprintf(&b, "%s,%d,%d,%d,%s,%t,%d,%d,%d,%.3f,%d,%.3f,%.3f,%.3f,%d,%d,%d,%d,%d,%d\n",
			r.Scenario, r.Nodes, r.ClampedFrom, r.Seed, r.Orderer, r.Pass,
			m.Regressions, m.StalenessViolations, m.MonotonicityFixes, m.ReconvergeMS,
			m.Samples, m.MaxBoundUS, m.MeanBoundUS, m.MaxSpreadUS,
			m.Rounds, m.Refreshes, m.CCSSent, m.Invalidations, m.ViewsEmitted, m.NetDropped)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInt64s(csv string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
