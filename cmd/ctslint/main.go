// Command ctslint runs the project's determinism and concurrency
// static-analysis suite (internal/lint) over the module tree and fails on
// any finding not covered by the reviewed lint.allow baseline. It is a hard
// gate in `make check` and ci.sh, between vet and build.
//
// Usage:
//
//	ctslint [-root dir] [-allow file] [-rules csv|all] [-json] [-v]
//
// -json emits surviving findings as JSONL on stdout (schema: internal/lint
// jsonFinding, pinned by test) with stale-baseline diagnostics on stderr, so
// CI and tooling can consume findings mechanically. -v adds per-rule wall
// time and finding counts.
//
// Exit status: 0 clean, 1 findings or stale baseline entries, 2 usage or
// load errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cts/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	root := flag.String("root", ".", "module root to analyze")
	allow := flag.String("allow", "", "baseline file (default <root>/lint.allow)")
	rules := flag.String("rules", "all", "comma-separated rule subset: "+strings.Join(lint.AllRules, ","))
	jsonOut := flag.Bool("json", false, "emit findings as JSONL on stdout (stale entries go to stderr)")
	verbose := flag.Bool("v", false, "report per-rule timings plus package and suppression counts")
	flag.Parse()

	cfg := lint.DefaultConfig()
	if *rules != "" && *rules != "all" {
		cfg.Rules = map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			r = strings.TrimSpace(r)
			known := false
			for _, k := range lint.AllRules {
				if k == r {
					known = true
				}
			}
			if !known {
				fmt.Fprintf(os.Stderr, "ctslint: unknown rule %q (have %s)\n", r, strings.Join(lint.AllRules, ", "))
				return 2
			}
			cfg.Rules[r] = true
		}
	}

	absRoot, err := filepath.Abs(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctslint: %v\n", err)
		return 2
	}
	pkgs, err := lint.Load(absRoot, modulePath(absRoot))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctslint: %v\n", err)
		return 2
	}

	allowPath := *allow
	if allowPath == "" {
		allowPath = filepath.Join(absRoot, "lint.allow")
	}
	baseline, err := lint.LoadBaseline(allowPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctslint: %v\n", err)
		return 2
	}

	findings, stats := lint.RunStats(pkgs, cfg)
	kept, stale := baseline.Filter(findings, absRoot)

	if *jsonOut {
		out := bufio.NewWriter(os.Stdout)
		defer out.Flush()
		if err := lint.WriteJSON(out, kept, absRoot); err != nil {
			fmt.Fprintf(os.Stderr, "ctslint: %v\n", err)
			return 2
		}
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "%s:%d: stale allow entry matches nothing: %s\n", allowPath, e.Line, e)
		}
		if len(kept) > 0 || len(stale) > 0 {
			return 1
		}
		return 0
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	for _, f := range kept {
		rel := f.Pos.Filename
		if r, err := filepath.Rel(absRoot, f.Pos.Filename); err == nil {
			rel = filepath.ToSlash(r)
		}
		fmt.Fprintf(out, "%s:%d:%d: %s: %s [%s]\n", rel, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg, f.Scope)
	}
	for _, e := range stale {
		fmt.Fprintf(out, "%s:%d: stale allow entry matches nothing: %s\n", allowPath, e.Line, e)
	}
	if *verbose {
		for _, s := range stats {
			fmt.Fprintf(out, "ctslint: rule %-10s %8.2fms %d finding(s)\n",
				s.Rule, float64(s.Duration.Microseconds())/1000, s.Findings)
		}
		fmt.Fprintf(out, "ctslint: %d package(s), %d finding(s), %d baselined, %d stale\n",
			len(pkgs), len(findings), len(findings)-len(kept), len(stale))
	}
	if len(kept) > 0 || len(stale) > 0 {
		return 1
	}
	return 0
}

// modulePath reads the module line of <root>/go.mod, defaulting to "main".
func modulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "main"
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return "main"
}
