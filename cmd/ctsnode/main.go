// Command ctsnode runs one replica of a consistent-time server group over
// real UDP — the production counterpart of the paper's testbed nodes P1–P3.
// The replicated application answers a CurrentTime method whose result is
// the group clock, read through the consistent time service.
//
// A three-replica group on one machine:
//
//	ctsnode -id 1 -peers 0=127.0.0.1:9000,1=127.0.0.1:9001,2=127.0.0.1:9002,3=127.0.0.1:9003 &
//	ctsnode -id 2 -peers ... &
//	ctsnode -id 3 -peers ... &
//	ctsclient -id 0 -peers ...
//
// The -peers list names every processor in the group (clients included).
// Flags -style (active|passive|semiactive) and -recover (join an existing
// group via state transfer) select the replication behavior; -orderer picks
// the total-order protocol (totem or seq) and must agree across the group. Observability:
// -v logs structured round/view lines, -trace FILE exports the CCS round
// trace as JSON lines, and -metrics D dumps the stack-wide counters every D.
//
// Federation: -topology FILE -group NAME joins this replica's group to a
// multi-group federation (DESIGN §12). The topology file names every group's
// id, CCS peers and federation summary addresses plus the inter-group edges;
// -peers may then be omitted (it defaults to this group's peer list from the
// file). Federation summarizes the lease plane, so groups with neighbors
// also need -serve.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"cts"
	"cts/internal/federation"
	"cts/internal/sim"
	"cts/internal/transport"
	"cts/internal/udptransport"
)

func main() {
	var (
		id        = flag.Uint("id", 1, "this processor's node id")
		peers     = flag.String("peers", "", "comma-separated id=host:port list for every ring member")
		style     = flag.String("style", "active", "replication style: active|passive|semiactive")
		orderer   = flag.String("orderer", "totem", "total-order protocol: totem|seq (must match every group member)")
		recover   = flag.Bool("recover", false, "join an existing group via state transfer")
		verbose   = flag.Bool("v", false, "log rounds and views as structured key=value lines")
		traceFile = flag.String("trace", "", "write the CCS round trace to this file as JSON lines")
		metrics   = flag.Duration("metrics", 0, "dump stack-wide metrics at this interval (0 disables)")

		serve       = flag.String("serve", "", "serve external time queries on this UDP address (e.g. :4460; empty disables)")
		serveShards = flag.Int("serve-shards", 0, "timeserve listener shards (0 = default 1)")
		serveIO     = flag.String("serve-io", "auto", "timeserve kernel I/O path: auto|seq|mmsg")
		lease       = flag.Duration("lease", time.Second, "lease window for external reads between CCS rounds")

		topoFile  = flag.String("topology", "", "federation topology JSON file (joins a multi-group federation; requires -group)")
		groupName = flag.String("group", "", "this node's group name in the -topology file")
		fedBind   = flag.String("fed-bind", "", "federation summary UDP bind address (default: this node's fed entry in the topology)")
	)
	flag.Parse()
	if err := run(runConfig{
		id: uint32(*id), peers: *peers, style: *style, orderer: *orderer, recovering: *recover,
		verbose: *verbose, traceFile: *traceFile, metricsEvery: *metrics,
		serve: *serve, serveShards: *serveShards, serveIO: *serveIO, lease: *lease,
		topoFile: *topoFile, groupName: *groupName, fedBind: *fedBind,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ctsnode:", err)
		os.Exit(1)
	}
}

// runConfig carries the parsed flags.
type runConfig struct {
	id           uint32
	peers        string
	style        string
	orderer      string
	recovering   bool
	verbose      bool
	traceFile    string
	metricsEvery time.Duration
	serve        string
	serveShards  int
	serveIO      string
	lease        time.Duration
	topoFile     string
	groupName    string
	fedBind      string
}

// fedSetup is the resolved federation plane of a -topology run: the local
// group's identity plus the bound link with its neighbor routes.
type fedSetup struct {
	group     cts.GroupID
	peers     string // group's CCS peer list, for when -peers is omitted
	neighbors []cts.GroupID
	link      *federation.UDPLink
	cfg       cts.FederationConfig
}

// setupFederation parses the topology file, resolves the local group and its
// neighbors, binds the summary socket and installs the neighbor routes.
// Loud by design: a group wired into the topology but missing addresses is a
// configuration error, never a silently idle exchange plane.
func setupFederation(rc runConfig) (*fedSetup, error) {
	if rc.groupName == "" {
		return nil, fmt.Errorf("-topology requires -group (which group this node belongs to)")
	}
	b, err := os.ReadFile(rc.topoFile)
	if err != nil {
		return nil, err
	}
	topo, err := federation.ParseTopology(b)
	if err != nil {
		return nil, err
	}
	g, ok := topo.Group(rc.groupName)
	if !ok {
		return nil, fmt.Errorf("group %q not found in %s", rc.groupName, rc.topoFile)
	}
	fs := &fedSetup{group: cts.GroupID(g.ID), peers: strings.Join(g.Peers, ",")}
	neighbors := topo.Neighbors(rc.groupName)
	if len(neighbors) == 0 {
		return fs, nil // a solo group: valid, nothing to exchange
	}
	if rc.serve == "" {
		return nil, fmt.Errorf("group %q has federation neighbors; -serve is required (summaries come from the lease plane)", g.Name)
	}
	bind := rc.fedBind
	if bind == "" {
		fedAddrs, err := federation.ParseMembers(g.Fed)
		if err != nil {
			return nil, fmt.Errorf("group %q fed addresses: %w", g.Name, err)
		}
		bind = fedAddrs[rc.id]
	}
	if bind == "" {
		return nil, fmt.Errorf("no federation bind address for node %d of group %q: set -fed-bind or a fed entry in the topology", rc.id, g.Name)
	}
	link, err := federation.NewUDPLink(bind)
	if err != nil {
		return nil, err
	}
	for _, nb := range neighbors {
		addrs, err := federation.ParseMembers(nb.Fed)
		if err != nil || len(addrs) == 0 {
			link.Close()
			return nil, fmt.Errorf("neighbor group %q lists no usable fed addresses (%v)", nb.Name, err)
		}
		list := make([]string, 0, len(addrs))
		for _, a := range addrs {
			list = append(list, a)
		}
		sort.Strings(list)
		if err := link.AddRoute(cts.GroupID(nb.ID), list); err != nil {
			link.Close()
			return nil, err
		}
		fs.neighbors = append(fs.neighbors, cts.GroupID(nb.ID))
	}
	fs.link = link
	fs.cfg = cts.FederationConfig{
		Link:          link,
		Neighbors:     fs.neighbors,
		ExchangeEvery: topo.ExchangeEvery(),
		MaxStep:       topo.MaxStep(),
		Precision:     topo.Precision(),
		InitialSlack:  topo.InitialSlack(),
	}
	if topo.Key != "" {
		fs.cfg.Key = []byte(topo.Key)
	}
	return fs, nil
}

// parsePeers parses "0=127.0.0.1:9000,1=..." into a node→address map.
func parsePeers(s string) (map[transport.NodeID]string, error) {
	out := make(map[transport.NodeID]string)
	if s == "" {
		return nil, fmt.Errorf("-peers is required")
	}
	var start int
	for i := 0; i <= len(s); i++ {
		if i != len(s) && s[i] != ',' {
			continue
		}
		entry := s[start:i]
		start = i + 1
		var id uint32
		var addr string
		if n, err := fmt.Sscanf(entry, "%d=%s", &id, &addr); n != 2 || err != nil {
			return nil, fmt.Errorf("bad peer entry %q (want id=host:port)", entry)
		}
		out[transport.NodeID(id)] = addr
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("need at least two peers, got %d", len(out))
	}
	return out, nil
}

func parseStyle(s string) (cts.Style, error) {
	switch s {
	case "active":
		return cts.Active, nil
	case "passive":
		return cts.Passive, nil
	case "semiactive":
		return cts.SemiActive, nil
	default:
		return 0, fmt.Errorf("unknown style %q", s)
	}
}

func run(rc runConfig) error {
	id, traceFile, metricsEvery := rc.id, rc.traceFile, rc.metricsEvery
	var fed *fedSetup
	if rc.topoFile != "" {
		var err error
		fed, err = setupFederation(rc)
		if err != nil {
			return err
		}
		if fed.link != nil {
			defer fed.link.Close()
		}
		if rc.peers == "" {
			rc.peers = fed.peers
		}
	}
	peers, err := parsePeers(rc.peers)
	if err != nil {
		return err
	}
	style, err := parseStyle(rc.style)
	if err != nil {
		return err
	}
	orderer, err := cts.ParseOrdererKind(rc.orderer)
	if err != nil {
		return err
	}
	if orderer == cts.OrdererInstant {
		return fmt.Errorf("the instant orderer is simulation-only; pick totem or seq")
	}
	self, ok := peers[transport.NodeID(id)]
	if !ok {
		return fmt.Errorf("node %d not present in -peers", id)
	}

	tr, err := udptransport.New(transport.NodeID(id), self)
	if err != nil {
		return err
	}
	defer tr.Close()
	var ring []transport.NodeID
	for pid, addr := range peers {
		ring = append(ring, pid)
		if pid != transport.NodeID(id) {
			if err := tr.SetPeer(pid, addr); err != nil {
				return err
			}
		}
	}
	// Every process must derive the same ring from the same -peers flag.
	sort.Slice(ring, func(i, j int) bool { return ring[i] < ring[j] })

	logger, err := cts.NewLogger(os.Stderr)
	if err != nil {
		return err
	}
	if rc.verbose {
		recvBuf, sendBuf := tr.BufferSizes()
		logger.Log("sockbuf",
			cts.F("node", id),
			cts.F("rcvbuf", recvBuf),
			cts.F("sndbuf", sendBuf))
	}
	var sink cts.TraceSink
	var jsink *cts.JSONLinesSink
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		jsink, err = cts.NewJSONLinesSink(f)
		if err != nil {
			return err
		}
		sink = jsink
	}
	rec, err := cts.NewRecorder(id, sink)
	if err != nil {
		return err
	}
	// Surface the UDP socket's error counters (udp.read_errors,
	// udp.send_errors) next to the stack-wide metrics.
	rec.Register(tr)

	loop := sim.NewLoop()
	defer loop.Close()

	opts := []cts.Option{
		cts.WithRuntime(loop),
		cts.WithTransport(tr),
		cts.WithMembers(ring),
		cts.WithOrderer(cts.OrdererOptions{Kind: orderer}),
		cts.WithStyle(style),
		cts.WithRecovering(rc.recovering),
		cts.WithObservability(rec),
	}
	if fed != nil {
		opts = append(opts, cts.WithGroup(fed.group))
		if fed.link != nil {
			opts = append(opts, cts.WithFederation(fed.cfg))
		}
	}
	if rc.serve != "" {
		tsCfg := cts.TimeServeConfig{
			Addr:        rc.serve,
			Shards:      rc.serveShards,
			LeaseWindow: rc.lease,
			ServeIO:     rc.serveIO,
		}
		if rc.verbose {
			// Degradations (batched syscalls unavailable, SO_REUSEPORT bind
			// refused) are silent by design on the hot path; surface each
			// once to the operator.
			tsCfg.OnFallback = func(reason string) {
				logger.Log("timeserve_fallback", cts.F("reason", reason))
			}
		}
		opts = append(opts, cts.WithTimeServe(tsCfg))
	}
	if rc.verbose {
		opts = append(opts,
			cts.WithOnStatus(func(st cts.Status) {
				logger.Log("status",
					cts.F("style", st.Style),
					cts.F("primary", st.Primary),
					cts.F("in_primary", st.InPrimary),
					cts.F("live", st.Live),
					cts.F("members", st.Members))
			}),
			cts.WithOnRound(func(r cts.RoundReport) {
				logger.Log("round",
					cts.F("round", r.Round),
					cts.F("group", r.GroupClock),
					cts.F("offset", r.Offset),
					cts.F("winner", r.Winner))
			}),
		)
	}
	svc, err := cts.New(opts...)
	if err != nil {
		return err
	}
	defer svc.Stop()
	if err := svc.Start(); err != nil {
		return err
	}
	group := cts.DefaultGroup
	if fed != nil {
		group = fed.group
	}
	logger.Log("up",
		cts.F("node", id),
		cts.F("style", style),
		cts.F("ring", len(ring)),
		cts.F("group", group))
	if fed != nil && fed.link != nil {
		// Attach the receive side only now that the agent exists; frames
		// arriving earlier are dropped, which the loss-tolerant exchange
		// plane absorbs.
		fed.link.SetAgent(svc.Federation())
		logger.Log("federation",
			cts.F("bind", fed.link.LocalAddr()),
			cts.F("neighbors", len(fed.neighbors)))
	}
	if ts := svc.TimeServe(); ts != nil {
		logger.Log("timeserve",
			cts.F("addr", ts.Addr()),
			cts.F("shards", ts.Shards()),
			cts.F("reuseport", ts.ReusePort()),
			cts.F("io", ts.IOPath()),
			cts.F("lease", rc.lease))
	}

	if metricsEvery > 0 {
		var dump func()
		dump = func() {
			svc.DumpMetrics(os.Stderr)
			loop.After(metricsEvery, dump)
		}
		loop.After(metricsEvery, dump)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Log("shutdown", cts.F("node", id))
	// Give in-flight traffic a moment to drain before the deferred stops.
	time.Sleep(100 * time.Millisecond)
	if jsink != nil {
		loop.Post(func() { svc.DumpMetrics(os.Stderr) })
		time.Sleep(10 * time.Millisecond)
		if err := jsink.Flush(); err != nil {
			return fmt.Errorf("flush trace: %w", err)
		}
	}
	return nil
}
