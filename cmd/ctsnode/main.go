// Command ctsnode runs one replica of a consistent-time server group over
// real UDP — the production counterpart of the paper's testbed nodes P1–P3.
// The replicated application answers a CurrentTime method whose result is
// the group clock, read through the consistent time service.
//
// A three-replica group on one machine:
//
//	ctsnode -id 1 -peers 0=127.0.0.1:9000,1=127.0.0.1:9001,2=127.0.0.1:9002,3=127.0.0.1:9003 &
//	ctsnode -id 2 -peers ... &
//	ctsnode -id 3 -peers ... &
//	ctsclient -id 0 -peers ...
//
// The -peers list names every processor in the ring (clients included).
// Flags -style (active|passive|semiactive) and -recover (join an existing
// group via state transfer) select the replication behavior.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cts/internal/core"
	"cts/internal/gcs"
	"cts/internal/hwclock"
	"cts/internal/replication"
	"cts/internal/sim"
	"cts/internal/transport"
	"cts/internal/udptransport"
	"cts/internal/wire"
)

const serverGroup wire.GroupID = 100

func main() {
	var (
		id      = flag.Uint("id", 1, "this processor's node id")
		peers   = flag.String("peers", "", "comma-separated id=host:port list for every ring member")
		style   = flag.String("style", "active", "replication style: active|passive|semiactive")
		recover = flag.Bool("recover", false, "join an existing group via state transfer")
		verbose = flag.Bool("v", false, "log rounds and views")
	)
	flag.Parse()
	if err := run(uint32(*id), *peers, *style, *recover, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "ctsnode:", err)
		os.Exit(1)
	}
}

// parsePeers parses "0=127.0.0.1:9000,1=..." into a node→address map.
func parsePeers(s string) (map[transport.NodeID]string, error) {
	out := make(map[transport.NodeID]string)
	if s == "" {
		return nil, fmt.Errorf("-peers is required")
	}
	var start int
	for i := 0; i <= len(s); i++ {
		if i != len(s) && s[i] != ',' {
			continue
		}
		entry := s[start:i]
		start = i + 1
		var id uint32
		var addr string
		if n, err := fmt.Sscanf(entry, "%d=%s", &id, &addr); n != 2 || err != nil {
			return nil, fmt.Errorf("bad peer entry %q (want id=host:port)", entry)
		}
		out[transport.NodeID(id)] = addr
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("need at least two peers, got %d", len(out))
	}
	return out, nil
}

func parseStyle(s string) (replication.Style, error) {
	switch s {
	case "active":
		return replication.Active, nil
	case "passive":
		return replication.Passive, nil
	case "semiactive":
		return replication.SemiActive, nil
	default:
		return 0, fmt.Errorf("unknown style %q", s)
	}
}

// timeApp is the replicated server: CurrentTime returns the group clock.
type timeApp struct {
	svc *core.TimeService
}

func (a *timeApp) Invoke(ctx *replication.Ctx, method string, body []byte) []byte {
	switch method {
	case "CurrentTime":
		v := a.svc.Gettimeofday(ctx)
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, uint64(v))
		return out
	}
	return nil
}
func (a *timeApp) Snapshot() []byte { return nil }
func (a *timeApp) Restore([]byte)   {}

func run(id uint32, peerSpec, styleSpec string, recovering, verbose bool) error {
	peers, err := parsePeers(peerSpec)
	if err != nil {
		return err
	}
	style, err := parseStyle(styleSpec)
	if err != nil {
		return err
	}
	self, ok := peers[transport.NodeID(id)]
	if !ok {
		return fmt.Errorf("node %d not present in -peers", id)
	}

	tr, err := udptransport.New(transport.NodeID(id), self)
	if err != nil {
		return err
	}
	defer tr.Close()
	var ring []transport.NodeID
	for pid, addr := range peers {
		ring = append(ring, pid)
		if pid != transport.NodeID(id) {
			if err := tr.SetPeer(pid, addr); err != nil {
				return err
			}
		}
	}

	loop := sim.NewLoop()
	defer loop.Close()
	stack, err := gcs.New(gcs.Config{
		Runtime:     loop,
		Transport:   tr,
		RingMembers: ring,
		Bootstrap:   !recovering,
	})
	if err != nil {
		return err
	}
	defer stack.Stop()

	app := &timeApp{}
	mgr, err := replication.New(replication.Config{
		Runtime:    loop,
		Stack:      stack,
		Group:      serverGroup,
		Style:      style,
		App:        app,
		Recovering: recovering,
		OnStatus: func(st replication.Status) {
			if verbose {
				log.Printf("status: style=%v primary=%v inPrimary=%v live=%v members=%v",
					st.Style, st.Primary, st.InPrimary, st.Live, st.Members)
			}
		},
	})
	if err != nil {
		return err
	}
	ccfg := core.Config{Manager: mgr, Clock: hwclock.SystemClock{}}
	if verbose {
		ccfg.OnRound = func(r core.RoundReport) {
			log.Printf("round %d: group=%v offset=%v winner=%v",
				r.Round, r.GroupClock, r.Offset, r.Winner)
		}
	}
	svc, err := core.New(ccfg)
	if err != nil {
		return err
	}
	app.svc = svc
	if err := mgr.Start(); err != nil {
		return err
	}
	stack.Start()
	log.Printf("ctsnode %d up (style %v, %d ring members, group %d)",
		id, style, len(ring), serverGroup)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("ctsnode %d shutting down", id)
	// Give in-flight traffic a moment to drain before the deferred stops.
	time.Sleep(100 * time.Millisecond)
	return nil
}
