// Command ctsload drives the external time-serving frontend (internal/
// timeserve) with a closed- or open-loop query load and verifies the lease
// plane's correctness guarantees while measuring throughput and latency
// (p50/p99/p999).
//
// Against a running group:
//
//	ctsload -targets 127.0.0.1:4460,127.0.0.1:4461,127.0.0.1:4462 -duration 10s
//
// Self-contained smoke run (starts a 3-replica group in-process; this is
// what `make loadtest` runs):
//
//	ctsload -inprocess -duration 5s -min-qps 100000
//
// Each worker keeps its own UDP client and batches -batch queries per
// datagram. Two invariants are checked on every response, using only
// happened-before ordering (no global clock):
//
//   - staleness: a reading's interval [group−bound, group+bound] must reach
//     the highest lower bound of any reading that completed before this one
//     was sent — otherwise the advertised bound lies.
//   - per-replica monotonicity: a replica's group clock must never run
//     backwards between two of its responses ordered by the client.
//
// The run fails (exit 1) on any violation, or when -min-qps is set and not
// met. -json writes a machine-readable result (default BENCH_timeserve.json).
//
// With -inprocess -fed-groups N the load runs against N federated groups
// (line topology over loopback summary links) and every worker migrates
// across the groups between exchanges, so both invariants are checked
// ACROSS groups: the staleness floor is global (federated bounds must cover
// inter-group skew) and the regression floors are keyed by (group, node) —
// node ids alone collide between groups.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cts"
	"cts/internal/federation"
	"cts/internal/stats"
	"cts/internal/testutil"
	"cts/internal/timeserve"
	"cts/internal/transport"
	"cts/internal/udptransport"

	"cts/internal/sim"
)

func main() {
	var (
		targets   = flag.String("targets", "", "comma-separated timeserve addresses of the replica group")
		inprocess = flag.Bool("inprocess", false, "start a local 3-replica group and load it (ignores -targets)")
		fedGroups = flag.Int("fed-groups", 0, "with -inprocess: start this many federated groups (line topology) and migrate each worker across them every exchange (0/1 = single group)")
		replicas  = flag.Int("replicas", 3, "replica count for -inprocess")
		shards    = flag.Int("shards", 1, "timeserve shards per in-process replica")
		lease     = flag.Duration("lease", time.Second, "lease window for -inprocess replicas")
		mode      = flag.String("mode", "closed", "load mode: closed (max rate) or open (paced by -rate)")
		rate      = flag.Float64("rate", 50000, "total target queries/s for -mode open")
		workers   = flag.Int("workers", 4, "concurrent load workers")
		batch     = flag.Int("batch", 8, "queries per datagram (1..64)")
		dgrams    = flag.Int("dgrams", 1, "datagrams per burst exchange (1..64; >1 drives the batched kernel I/O path)")
		serveIO   = flag.String("serve-io", "auto", "kernel I/O path for -inprocess replicas and burst clients: auto|seq|mmsg")
		duration  = flag.Duration("duration", 5*time.Second, "measurement duration")
		minQPS    = flag.Float64("min-qps", 0, "fail unless sustained queries/s reaches this (0 disables)")
		maxSPQ    = flag.Float64("max-syscalls-per-query", 0, "fail if server-side syscalls per query exceed this (0 disables; needs -inprocess)")
		maxAllocs = flag.Float64("max-allocs-per-op", -1, "fail if the batched serve cycle allocates more than this per op (-1 disables)")
		jsonOut   = flag.String("json", "BENCH_timeserve.json", "write machine-readable results here (empty disables)")
		seed      = flag.Int64("seed", 2003, "run label recorded in the result JSON (the live loop has no simulation RNG)")
	)
	flag.Parse()
	if err := run(config{
		targets: *targets, inprocess: *inprocess, fedGroups: *fedGroups, replicas: *replicas,
		shards: *shards, lease: *lease, mode: *mode, rate: *rate,
		workers: *workers, batch: *batch, dgrams: *dgrams, serveIO: *serveIO,
		duration: *duration, minQPS: *minQPS, maxSPQ: *maxSPQ,
		maxAllocs: *maxAllocs, jsonOut: *jsonOut, seed: *seed,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ctsload:", err)
		os.Exit(1)
	}
}

type config struct {
	targets   string
	inprocess bool
	fedGroups int
	replicas  int
	shards    int
	lease     time.Duration
	mode      string
	rate      float64
	workers   int
	batch     int
	dgrams    int
	serveIO   string
	duration  time.Duration
	minQPS    float64
	maxSPQ    float64
	maxAllocs float64
	jsonOut   string
	seed      int64
}

// checker verifies the lease invariants across all workers. Both checks use
// only happened-before ordering: a floor value is compared against a
// response only when the floor was recorded BEFORE that response's request
// was sent, so the server-side read it reflects strictly preceded ours.
// Comparing responses by receipt order across workers would be unsound —
// receipt order is not generation order.
type checker struct {
	// lowerFloor is the highest (group − bound) of any completed reading:
	// readings sent after that completion must advertise intervals reaching
	// it. It is global across replica groups — with -fed-groups this is the
	// federation's promise, since every group's advertised bound folds the
	// inter-group slack.
	lowerFloor atomic.Int64
	// nodes holds one served-clock floor per replica, for the per-replica
	// regression check. The entry list only grows; workers snapshot it
	// lock-free via the atomic pointer.
	mu       sync.Mutex
	nodeList atomic.Pointer[[]nodeEntry]

	stalenessViolations  atomic.Uint64
	regressionViolations atomic.Uint64
}

// nodeEntry keys the per-replica floor by (group, node), never node alone:
// the wire response's node id is only unique within one replica group, so a
// worker migrating across federated groups would otherwise fold two distinct
// replicas' clocks into one floor and flag phantom regressions (or mask real
// ones). The group here is the client-side identity of the group whose
// frontend was queried — the response itself does not carry one.
type nodeEntry struct {
	group uint32
	node  uint32
	clock *atomic.Int64
}

// snapshot is a worker-local pre-send view of every floor. Buffers are
// reused across exchanges.
type snapshot struct {
	floor   int64
	entries []nodeEntry
	clocks  []int64
}

// preSend records the floors a subsequent response must respect.
func (c *checker) preSend(s *snapshot) {
	s.floor = c.lowerFloor.Load()
	s.entries = nil
	if p := c.nodeList.Load(); p != nil {
		s.entries = *p
	}
	s.clocks = s.clocks[:0]
	for _, e := range s.entries {
		s.clocks = append(s.clocks, e.clock.Load())
	}
}

func (c *checker) nodeFloor(group, node uint32) *atomic.Int64 {
	if p := c.nodeList.Load(); p != nil {
		for _, e := range *p {
			if e.group == group && e.node == node {
				return e.clock
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var entries []nodeEntry
	if p := c.nodeList.Load(); p != nil {
		entries = *p
		for _, e := range entries {
			if e.group == group && e.node == node {
				return e.clock
			}
		}
	}
	clock := new(atomic.Int64)
	grown := append(append([]nodeEntry(nil), entries...), nodeEntry{group: group, node: node, clock: clock})
	c.nodeList.Store(&grown)
	return clock
}

// onResponse validates one leased response against the pre-send snapshot
// and folds it into the floors. group identifies the replica group whose
// frontend answered (always 0 for single-group runs).
func (c *checker) onResponse(group uint32, r timeserve.Response, pre *snapshot) {
	g, b := int64(r.Group), int64(r.Bound)
	if g+b < pre.floor {
		c.stalenessViolations.Add(1)
	}
	for i, e := range pre.entries {
		if e.group == group && e.node == r.Node {
			if g < pre.clocks[i] {
				c.regressionViolations.Add(1)
			}
			break
		}
	}
	nf := c.nodeFloor(group, r.Node)
	for {
		prev := nf.Load()
		if g <= prev {
			break
		}
		if nf.CompareAndSwap(prev, g) {
			break
		}
	}
	for {
		prev := c.lowerFloor.Load()
		if g-b <= prev {
			break
		}
		if c.lowerFloor.CompareAndSwap(prev, g-b) {
			break
		}
	}
}

// result is the machine-readable run record. Scenario and Seed identify
// the row across bench files (every BENCH_*.json row carries both).
type result struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Mode     string `json:"mode"`
	Targets  int    `json:"targets"`
	// FedGroups is the number of federated in-process groups the workers
	// migrated across (0 for a plain single-group run).
	FedGroups int `json:"fed_groups,omitempty"`
	Workers   int `json:"workers"`
	Batch     int `json:"batch"`
	Dgrams    int `json:"dgrams"`
	// BatchMode names the kernel I/O path the run actually exercised:
	// "mmsg" when every in-process replica (and, for multi-datagram bursts,
	// every client) stayed on the batched recvmmsg/sendmmsg cycle, "seq"
	// otherwise.
	BatchMode string  `json:"batch_mode"`
	DurationS float64 `json:"duration_s"`
	Queries   uint64  `json:"queries"`
	QPS       float64 `json:"qps"`
	Errors    uint64  `json:"errors"`
	// SyscallsPerQuery is the server-side kernel I/O operations per served
	// query across the in-process replicas (-1 when the servers are remote
	// and the counters unreachable).
	SyscallsPerQuery float64 `json:"syscalls_per_query"`
	// AllocsPerOp is the measured heap allocations per batched
	// drain-serve cycle (-1 when the build lacks the batched path or the
	// race detector perturbs the measurement).
	AllocsPerOp float64 `json:"allocs_per_op"`
	Violations  struct {
		Staleness  uint64 `json:"staleness"`
		Regression uint64 `json:"regression"`
	} `json:"violations"`
	LatencyUS struct {
		P50  float64 `json:"p50"`
		P99  float64 `json:"p99"`
		P999 float64 `json:"p999"`
	} `json:"latency_us"`
}

func run(cfg config) error {
	if cfg.batch < 1 || cfg.batch > timeserve.MaxBatch {
		return fmt.Errorf("-batch %d outside [1, %d]", cfg.batch, timeserve.MaxBatch)
	}
	if cfg.dgrams < 1 || cfg.dgrams > timeserve.MaxBurst {
		return fmt.Errorf("-dgrams %d outside [1, %d]", cfg.dgrams, timeserve.MaxBurst)
	}
	ioMode, err := timeserve.ParseIOMode(cfg.serveIO)
	if err != nil {
		return err
	}
	if cfg.mode != "closed" && cfg.mode != "open" {
		return fmt.Errorf("unknown -mode %q (want closed or open)", cfg.mode)
	}
	if cfg.maxSPQ > 0 && !cfg.inprocess {
		return fmt.Errorf("-max-syscalls-per-query needs -inprocess (remote server counters are unreachable)")
	}
	var targetsByGroup [][]string
	var fl *fleet
	if cfg.inprocess {
		ngroups := cfg.fedGroups
		if ngroups < 1 {
			ngroups = 1
		}
		fl, err = startFleet(ngroups, cfg.replicas, cfg.shards, cfg.lease, cfg.serveIO)
		if err != nil {
			return err
		}
		defer fl.stop()
		for _, g := range fl.groups {
			targetsByGroup = append(targetsByGroup, g.targets)
		}
	} else {
		if cfg.fedGroups > 1 {
			return fmt.Errorf("-fed-groups needs -inprocess (remote groups are driven one at a time via -targets)")
		}
		if cfg.targets == "" {
			return fmt.Errorf("-targets or -inprocess is required")
		}
		targetsByGroup = [][]string{strings.Split(cfg.targets, ",")}
	}
	ntargets := 0
	for _, t := range targetsByGroup {
		ntargets += len(t)
	}

	fmt.Printf("ctsload: %s loop, %d workers x %d datagram(s) x batch %d against %d target(s) in %d group(s) for %v\n",
		cfg.mode, cfg.workers, cfg.dgrams, cfg.batch, ntargets, len(targetsByGroup), cfg.duration)

	chk := &checker{}
	var (
		queries  atomic.Uint64
		errs     atomic.Uint64
		wg       sync.WaitGroup
		stop     atomic.Bool
		lats     = make([]*stats.Durations, cfg.workers)
		cliPaths = make([]string, cfg.workers)
	)
	baseSyscalls := uint64(0)
	if fl != nil {
		baseSyscalls = fl.syscalls()
	}
	for w := 0; w < cfg.workers; w++ {
		lats[w] = &stats.Durations{}
		cliPaths[w] = "seq"
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One client per replica group; the worker migrates across the
			// groups every exchange, carrying the happened-before floors with
			// it (the migrating-client pattern the federation must serve).
			clis := make([]*timeserve.Client, len(targetsByGroup))
			closeAll := func() {
				for _, c := range clis {
					if c != nil {
						_ = c.Close() // worker teardown; sockets are going away
					}
				}
			}
			for gi := range targetsByGroup {
				cli, err := timeserve.NewClient(timeserve.ClientConfig{
					Targets: rotated(targetsByGroup[gi], w),
					Timeout: 250 * time.Millisecond,
					IO:      ioMode,
				})
				if err != nil {
					errs.Add(1)
					closeAll()
					return
				}
				clis[gi] = cli
			}
			defer closeAll()
			interval := time.Duration(0)
			if cfg.mode == "open" && cfg.rate > 0 {
				perWorker := cfg.rate / float64(cfg.workers)
				interval = time.Duration(float64(cfg.batch*cfg.dgrams) / perWorker * float64(time.Second))
			}
			next := time.Now()
			var pre snapshot
			gidx := w % len(clis)
			for !stop.Load() {
				if interval > 0 {
					next = next.Add(interval)
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
				}
				cli := clis[gidx]
				chk.preSend(&pre)
				t0 := time.Now()
				var resps []timeserve.Response
				var err error
				if cfg.dgrams > 1 {
					resps, err = cli.QueryBurst(cfg.dgrams, cfg.batch)
				} else {
					resps, err = cli.QueryBatch(cfg.batch)
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				lats[w].Add(time.Since(t0))
				served := uint64(0)
				for _, r := range resps {
					if !r.OK() {
						// Burst exchanges hand refusals back instead of
						// erroring the whole burst.
						errs.Add(1)
						continue
					}
					served++
					chk.onResponse(uint32(gidx), r, &pre)
				}
				queries.Add(served)
				gidx++
				if gidx == len(clis) {
					gidx = 0
				}
			}
			path := "mmsg"
			for _, c := range clis {
				if c.IOPath() != "mmsg" {
					path = "seq"
				}
			}
			cliPaths[w] = path
		}(w)
	}

	start := time.Now()
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	syscallsPerQuery := -1.0
	if fl != nil && queries.Load() > 0 {
		syscallsPerQuery = float64(fl.syscalls()-baseSyscalls) / float64(queries.Load())
	}

	all := &stats.Durations{}
	for _, d := range lats {
		for _, v := range d.Values() {
			all.Add(v)
		}
	}
	var res result
	res.Scenario = "timeserve-" + cfg.mode
	res.Seed = cfg.seed
	res.Mode = cfg.mode
	res.Targets = ntargets
	if len(targetsByGroup) > 1 {
		res.FedGroups = len(targetsByGroup)
	}
	res.Workers = cfg.workers
	res.Batch = cfg.batch
	res.Dgrams = cfg.dgrams
	res.BatchMode = batchMode(fl, cliPaths, cfg.dgrams)
	res.DurationS = elapsed.Seconds()
	res.Queries = queries.Load()
	res.QPS = float64(res.Queries) / elapsed.Seconds()
	res.Errors = errs.Load()
	res.SyscallsPerQuery = syscallsPerQuery
	res.AllocsPerOp = measureAllocs()
	res.Violations.Staleness = chk.stalenessViolations.Load()
	res.Violations.Regression = chk.regressionViolations.Load()
	if all.N() > 0 {
		res.LatencyUS.P50 = float64(all.Percentile(50)) / float64(time.Microsecond)
		res.LatencyUS.P99 = float64(all.Percentile(99)) / float64(time.Microsecond)
		res.LatencyUS.P999 = float64(all.Percentile(99.9)) / float64(time.Microsecond)
	}

	fmt.Printf("ctsload: %d queries in %v = %.0f queries/s (%d errors, io=%s)\n",
		res.Queries, elapsed.Round(time.Millisecond), res.QPS, res.Errors, res.BatchMode)
	fmt.Printf("ctsload: latency per batched exchange p50=%.0fµs p99=%.0fµs p999=%.0fµs (%d samples)\n",
		res.LatencyUS.P50, res.LatencyUS.P99, res.LatencyUS.P999, all.N())
	fmt.Printf("ctsload: syscalls/query=%s allocs/op=%s\n",
		fmtGauge(res.SyscallsPerQuery), fmtGauge(res.AllocsPerOp))
	fmt.Printf("ctsload: violations: staleness=%d regression=%d\n",
		res.Violations.Staleness, res.Violations.Regression)

	if cfg.jsonOut != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.jsonOut, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("ctsload: wrote %s\n", cfg.jsonOut)
	}

	if res.Violations.Staleness > 0 || res.Violations.Regression > 0 {
		return fmt.Errorf("lease invariants violated (staleness=%d regression=%d)",
			res.Violations.Staleness, res.Violations.Regression)
	}
	if cfg.minQPS > 0 && res.QPS < cfg.minQPS {
		return fmt.Errorf("sustained %.0f queries/s below -min-qps %.0f", res.QPS, cfg.minQPS)
	}
	if cfg.maxSPQ > 0 && res.SyscallsPerQuery > cfg.maxSPQ {
		return fmt.Errorf("server issued %.3f syscalls/query, above -max-syscalls-per-query %.3f",
			res.SyscallsPerQuery, cfg.maxSPQ)
	}
	if cfg.maxAllocs >= 0 {
		if res.AllocsPerOp < 0 {
			fmt.Println("ctsload: allocs/op gate skipped (no batched path on this build, or race detector active)")
		} else if res.AllocsPerOp > cfg.maxAllocs {
			return fmt.Errorf("batched serve cycle allocates %.2f allocs/op, above -max-allocs-per-op %.2f",
				res.AllocsPerOp, cfg.maxAllocs)
		}
	}
	return nil
}

// batchMode names the kernel I/O path the run actually exercised: the
// in-process servers' path, degraded to "seq" if any multi-datagram burst
// client fell off the batched syscalls. With remote targets only the client
// side is observable.
func batchMode(fl *fleet, cliPaths []string, dgrams int) string {
	mode := "mmsg"
	if fl != nil {
		mode = fl.ioPath()
	} else if !timeserve.MmsgSupported() {
		mode = "seq"
	}
	if dgrams > 1 {
		for _, p := range cliPaths {
			if p != "mmsg" {
				return "seq"
			}
		}
	}
	return mode
}

// measureAllocs probes the batched serve cycle's allocations per operation;
// -1 when unmeasurable (no batched path, or the race detector inflates
// allocation counts).
func measureAllocs() float64 {
	if testutil.RaceEnabled {
		return -1
	}
	return timeserve.ServeAllocsPerOp()
}

// fmtGauge renders a measured-or-unavailable gauge for the summary line.
func fmtGauge(v float64) string {
	if v < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", v)
}

// rotated returns targets rotated by w, spreading workers across replicas.
func rotated(targets []string, w int) []string {
	n := len(targets)
	out := make([]string, n)
	for i := range targets {
		out[i] = targets[(i+w)%n]
	}
	return out
}

// fleet is one or more in-process replica groups; with more than one they
// are federated over loopback UDP summary links in a line topology.
type fleet struct {
	groups []*group
	links  [][]*federation.UDPLink // [group][replica]; nil for a single group
}

// fedLoadGroupID maps a fleet group index to its wire group identifier.
func fedLoadGroupID(gi int) cts.GroupID { return cts.DefaultGroup + cts.GroupID(gi) }

// startFleet brings up ngroups in-process replica groups. With ngroups > 1
// every node gets a federation summary link, groups are wired in a line
// (group i peers with i±1), and the facade's WithFederation keeps the
// inter-group skew bounded — which is what lets one worker migrate across
// groups and still see its happened-before floors respected.
func startFleet(ngroups, n, shards int, lease time.Duration, serveIO string) (*fleet, error) {
	fl := &fleet{}
	if ngroups > 1 {
		for gi := 0; gi < ngroups; gi++ {
			var row []*federation.UDPLink
			for i := 0; i < n; i++ {
				l, err := federation.NewUDPLink("127.0.0.1:0")
				if err != nil {
					fl.stop()
					return nil, err
				}
				row = append(row, l)
			}
			fl.links = append(fl.links, row)
		}
	}
	for gi := 0; gi < ngroups; gi++ {
		var links []*federation.UDPLink
		var neighbors []cts.GroupID
		if fl.links != nil {
			links = fl.links[gi]
			if gi > 0 {
				neighbors = append(neighbors, fedLoadGroupID(gi-1))
			}
			if gi < ngroups-1 {
				neighbors = append(neighbors, fedLoadGroupID(gi+1))
			}
		}
		g, err := startGroup(gi, n, shards, lease, serveIO, links, neighbors)
		if err != nil {
			fl.stop()
			return nil, err
		}
		fl.groups = append(fl.groups, g)
	}
	for gi, row := range fl.links {
		for _, l := range row {
			for _, nb := range []int{gi - 1, gi + 1} {
				if nb < 0 || nb >= ngroups {
					continue
				}
				var addrs []string
				for _, nl := range fl.links[nb] {
					addrs = append(addrs, nl.LocalAddr())
				}
				if err := l.AddRoute(fedLoadGroupID(nb), addrs); err != nil {
					fl.stop()
					return nil, err
				}
			}
		}
	}
	// Attach the receive sides only now that every agent exists; earlier
	// frames are dropped, which the loss-tolerant exchange plane absorbs.
	for gi, row := range fl.links {
		for i, l := range row {
			l.SetAgent(fl.groups[gi].svcs[i].Federation())
		}
	}
	return fl, nil
}

// ioPath reports the fleet-wide serving I/O path: "mmsg" only while every
// group's every frontend is on the batched cycle.
func (f *fleet) ioPath() string {
	for _, g := range f.groups {
		if g.ioPath() != "mmsg" {
			return "seq"
		}
	}
	return "mmsg"
}

// syscalls sums the serving-side kernel I/O counters across all groups.
func (f *fleet) syscalls() uint64 {
	var n uint64
	for _, g := range f.groups {
		n += g.syscalls()
	}
	return n
}

func (f *fleet) stop() {
	for _, g := range f.groups {
		g.stop()
	}
	for _, row := range f.links {
		for _, l := range row {
			_ = l.Close() // teardown; the process is exiting
		}
	}
}

// group is an in-process replica group for self-contained load runs.
type group struct {
	svcs    []*cts.Service
	loops   []*sim.Loop
	trs     []*udptransport.Transport
	targets []string
}

// ioPath reports the replicas' serving I/O path: "mmsg" only while every
// frontend is on the batched cycle.
func (g *group) ioPath() string {
	for _, svc := range g.svcs {
		if ts := svc.TimeServe(); ts == nil || ts.IOPath() != "mmsg" {
			return "seq"
		}
	}
	return "mmsg"
}

// syscalls sums the replicas' serving-side kernel I/O counters.
func (g *group) syscalls() uint64 {
	var n uint64
	for _, svc := range g.svcs {
		if ts := svc.TimeServe(); ts != nil {
			n += ts.Syscalls()
		}
	}
	return n
}

// startGroup brings up n actively replicated ctsnode-equivalents on
// loopback, each with the timeserve frontend on an ephemeral port, and
// waits until every replica holds a lease. A non-nil links slice (one
// summary link per replica) joins the group to a federation with the given
// neighbor groups.
func startGroup(gi, n, shards int, lease time.Duration, serveIO string, links []*federation.UDPLink, neighbors []cts.GroupID) (*group, error) {
	if n < 2 {
		return nil, fmt.Errorf("-replicas must be at least 2, got %d", n)
	}
	g := &group{}
	ring := make([]transport.NodeID, n)
	for i := 0; i < n; i++ {
		ring[i] = transport.NodeID(i + 1)
	}
	for _, id := range ring {
		tr, err := udptransport.New(id, "127.0.0.1:0")
		if err != nil {
			g.stop()
			return nil, err
		}
		g.trs = append(g.trs, tr)
	}
	for i, tr := range g.trs {
		for j, other := range g.trs {
			if i == j {
				continue
			}
			if err := tr.SetPeer(ring[j], other.LocalAddr()); err != nil {
				g.stop()
				return nil, err
			}
		}
	}
	for i, tr := range g.trs {
		loop := sim.NewLoop()
		g.loops = append(g.loops, loop)
		opts := []cts.Option{
			cts.WithRuntime(loop),
			cts.WithTransport(tr),
			cts.WithRingMembers(ring),
			cts.WithGroup(fedLoadGroupID(gi)),
			cts.WithTimeServe(cts.TimeServeConfig{
				Addr:        "127.0.0.1:0",
				Shards:      shards,
				LeaseWindow: lease,
				ServeIO:     serveIO,
			}),
		}
		if links != nil {
			opts = append(opts, cts.WithFederation(cts.FederationConfig{
				Link:      links[i],
				Neighbors: neighbors,
			}))
		}
		svc, err := cts.New(opts...)
		if err != nil {
			g.stop()
			return nil, err
		}
		if err := svc.Start(); err != nil {
			g.stop()
			return nil, err
		}
		g.svcs = append(g.svcs, svc)
		g.targets = append(g.targets, svc.TimeServeAddr())
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, svc := range g.svcs {
		for {
			if _, ok := svc.LeaseRead(); ok {
				break
			}
			if time.Now().After(deadline) {
				g.stop()
				return nil, fmt.Errorf("in-process group failed to establish leases within 10s")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	fmt.Printf("ctsload: in-process group %d up: %d replicas, targets %s\n",
		gi, len(g.targets), strings.Join(g.targets, ","))
	return g, nil
}

func (g *group) stop() {
	for _, svc := range g.svcs {
		svc.Stop()
	}
	for _, loop := range g.loops {
		loop.Close()
	}
	for _, tr := range g.trs {
		_ = tr.Close() // teardown; the process is exiting
	}
}
