// Command ctsbench regenerates every table and figure of the paper's
// evaluation (§4) on the simulated testbed, plus the extension experiments
// indexed in DESIGN.md. Experiments run in virtual time, so even the
// paper-scale runs (-full, 10,000 invocations) finish quickly.
//
// Usage:
//
//	ctsbench -exp all            # every experiment, scaled-down sizes
//	ctsbench -exp fig5 -full     # Figure 5 at the paper's 10,000 invocations
//	ctsbench -exp fig6 -seed 7   # Figure 6 with a different seed
//
// Experiments: fig1, fig5, fig5concurrent (-readers N), fig6 (6a/6b/6c),
// msgcounts, rollback, recovery, drift, token, scale, ablation, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"cts"
	"cts/internal/campaign"
	"cts/internal/experiment"
	"cts/internal/stats"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run (fig1|fig5|fig5concurrent|fig6|msgcounts|rollback|recovery|drift|token|scale|ablation|federation|all)")
		seed    = flag.Int64("seed", 2003, "simulation seed")
		full    = flag.Bool("full", false, "run at the paper's full sizes (10,000 invocations)")
		trace   = flag.String("trace", "fig5.trace.jsonl", "write the fig5 CCS round trace to this file as JSON lines (empty disables)")
		jsonOut = flag.String("json", "BENCH_fig5.json", "write the fig5 latency summary to this file as JSON (empty disables)")
		readers = flag.Int("readers", 8, "concurrent reader threads per replica for the concurrent experiment")
		jsonCon = flag.String("jsonConcurrent", "BENCH_fig5_concurrent.json", "write the concurrent-reader summary to this file as JSON (empty disables)")
		jsonFed = flag.String("jsonFederation", "BENCH_federation.json", "write the federation sweep to this file as JSON (empty disables)")
	)
	flag.Parse()

	if err := run(*exp, *seed, *full, *trace, *jsonOut, *readers, *jsonCon, *jsonFed); err != nil {
		fmt.Fprintln(os.Stderr, "ctsbench:", err)
		os.Exit(1)
	}
}

// latencySummary is one JSON latency record of the fig5 benchmark file.
type latencySummary struct {
	N      int     `json:"n"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
}

func summarize(d *stats.Durations) latencySummary {
	us := func(v time.Duration) float64 { return float64(v) / float64(time.Microsecond) }
	return latencySummary{
		N:      d.N(),
		MeanUS: us(d.Mean()),
		P50US:  us(d.Percentile(50)),
		P99US:  us(d.Percentile(99)),
		P999US: us(d.Percentile(99.9)),
	}
}

// writeFig5JSON exports the Figure 5 latency distributions for CI tracking.
func writeFig5JSON(path string, seed int64, invocations int, res *experiment.Figure5Result) error {
	out := struct {
		Experiment  string         `json:"experiment"`
		Seed        int64          `json:"seed"`
		Invocations int            `json:"invocations"`
		With        latencySummary `json:"with_cts"`
		Without     latencySummary `json:"without_cts"`
		OverheadUS  float64        `json:"overhead_us"`
	}{
		Experiment:  "fig5",
		Seed:        seed,
		Invocations: invocations,
		With:        summarize(&res.With),
		Without:     summarize(&res.Without),
		OverheadUS:  float64(res.Overhead()) / float64(time.Microsecond),
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// concurrentRun pairs the multi-reader measurement with its single-reader
// baseline for rendering, JSON export and the CI amortization gate.
type concurrentRun struct {
	multi, single *experiment.Figure5ConcurrentResult
}

// ratio is the amortization ratio: concurrent per-read overhead over the
// single-reader per-read overhead (lower is better; 1/readers is ideal).
func (c *concurrentRun) ratio() float64 {
	base := c.single.PerReadOverhead()
	if base <= 0 {
		return 1
	}
	return float64(c.multi.PerReadOverhead()) / float64(base)
}

func (c *concurrentRun) Render() string {
	var b strings.Builder
	b.WriteString(c.multi.Render())
	b.WriteString(c.single.Render())
	fmt.Fprintf(&b, "  amortization ratio (concurrent/single per-read overhead): %.3f\n", c.ratio())
	return b.String()
}

// gate enforces the CI smoke thresholds: concurrent reads must actually
// coalesce, and the amortized per-read overhead must be at most half the
// single-reader overhead.
func (c *concurrentRun) gate() error {
	if c.multi.RoundsCoalesced == 0 || c.multi.BatchesSent == 0 {
		return fmt.Errorf("no round coalescing under %d concurrent readers (coalesced=%d batches=%d)",
			c.multi.Readers, c.multi.RoundsCoalesced, c.multi.BatchesSent)
	}
	if c.multi.Readers >= 2 && c.ratio() > 0.5 {
		return fmt.Errorf("per-read overhead %v with %d readers is more than half the single-reader overhead %v",
			c.multi.PerReadOverhead(), c.multi.Readers, c.single.PerReadOverhead())
	}
	return nil
}

// writeConcurrentJSON exports the concurrent-reader measurement for CI
// tracking.
func writeConcurrentJSON(path string, seed int64, c *concurrentRun) error {
	us := func(v time.Duration) float64 { return float64(v) / float64(time.Microsecond) }
	type side struct {
		Readers           int     `json:"readers"`
		OpsPerReader      int     `json:"ops_per_reader"`
		WallWithUS        float64 `json:"wall_with_cts_us"`
		WallWithoutUS     float64 `json:"wall_without_cts_us"`
		PerReadOverheadUS float64 `json:"per_read_overhead_us"`
	}
	mk := func(r *experiment.Figure5ConcurrentResult) side {
		return side{
			Readers:           r.Readers,
			OpsPerReader:      r.OpsPerReader,
			WallWithUS:        us(r.WallWith),
			WallWithoutUS:     us(r.WallWithout),
			PerReadOverheadUS: us(r.PerReadOverhead()),
		}
	}
	out := struct {
		Experiment        string  `json:"experiment"`
		Seed              int64   `json:"seed"`
		Concurrent        side    `json:"concurrent"`
		Single            side    `json:"single_reader"`
		AmortizationRatio float64 `json:"amortization_ratio"`
		RoundsCoalesced   uint64  `json:"rounds_coalesced"`
		BatchesSent       uint64  `json:"batches_sent"`
		BatchEntries      uint64  `json:"batch_entries"`
		CCSSent           uint64  `json:"ccs_sent"`
	}{
		Experiment:        "fig5_concurrent",
		Seed:              seed,
		Concurrent:        mk(c.multi),
		Single:            mk(c.single),
		AmortizationRatio: c.ratio(),
		RoundsCoalesced:   c.multi.RoundsCoalesced,
		BatchesSent:       c.multi.BatchesSent,
		BatchEntries:      c.multi.BatchEntries,
		CCSSent:           c.multi.CCSSent,
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// withSummary appends an observability summary to an experiment's rendering.
type withSummary struct {
	inner interface{ Render() string }
	extra string
}

func (w withSummary) Render() string { return w.inner.Render() + w.extra }

// metricsSummary renders the gathered stack-wide counters, aggregated across
// nodes, sorted by name.
func metricsSummary(samples []cts.Sample) string {
	m := cts.SampleMap(samples)
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("\nstack metrics (summed across nodes):\n")
	for _, name := range names {
		fmt.Fprintf(&b, "  %-28s %d\n", name, m[name])
	}
	return b.String()
}

// runFig5Traced runs Figure 5 with the observability layer on, exporting the
// round trace as JSON lines and appending a metrics summary to the result.
func runFig5Traced(seed int64, invocations int, traceFile string) (interface{ Render() string }, error) {
	f, err := os.Create(traceFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sink, err := cts.NewJSONLinesSink(f)
	if err != nil {
		return nil, err
	}
	res, err := experiment.RunFigure5Traced(seed, invocations, sink)
	if err != nil {
		return nil, err
	}
	if err := sink.Flush(); err != nil {
		return nil, fmt.Errorf("flush trace: %w", err)
	}
	extra := metricsSummary(res.Metrics) +
		fmt.Sprintf("trace: %d events -> %s\n", sink.Count(), traceFile)
	return withSummary{inner: res, extra: extra}, nil
}

// writeFederationJSON exports the federation sweep for CI tracking. Every
// cell carries its own pass/fail verdict and failure list, so the file is
// self-gating: a regression shows up as pass=false, never as silently
// missing coverage.
func writeFederationJSON(path string, fed *experiment.FederationSweepResult) error {
	out := struct {
		Experiment string               `json:"experiment"`
		Seed       int64                `json:"seed"`
		Cells      []campaign.FedResult `json:"cells"`
	}{Experiment: "federation", Seed: fed.Seed, Cells: fed.Cells}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func run(exp string, seed int64, full bool, trace, jsonOut string, readers int, jsonCon, jsonFed string) error {
	invocations := 1000
	ops := 1000
	readsPer := 25
	if full {
		invocations = 10000
		ops = 10000
		readsPer = 100
	}
	var fig5 *experiment.Figure5Result
	var conc *concurrentRun
	var fed *experiment.FederationSweepResult

	type runner struct {
		name string
		fn   func() (interface{ Render() string }, error)
	}
	runners := []runner{
		{"fig1", func() (interface{ Render() string }, error) {
			return experiment.RunFigure1(seed, min(ops, 2000))
		}},
		{"fig5", func() (interface{ Render() string }, error) {
			if trace == "" {
				res, err := experiment.RunFigure5(seed, invocations)
				fig5 = res
				return res, err
			}
			res, err := runFig5Traced(seed, invocations, trace)
			if w, ok := res.(withSummary); ok {
				fig5 = w.inner.(*experiment.Figure5Result)
			}
			return res, err
		}},
		{"fig5concurrent", func() (interface{ Render() string }, error) {
			multi, err := experiment.RunFigure5Concurrent(seed, readers, readsPer)
			if err != nil {
				return nil, err
			}
			single, err := experiment.RunFigure5Concurrent(seed, 1, readsPer)
			if err != nil {
				return nil, err
			}
			conc = &concurrentRun{multi: multi, single: single}
			return conc, nil
		}},
		{"fig6", func() (interface{ Render() string }, error) {
			return experiment.RunFigure6(seed, ops, 20)
		}},
		{"msgcounts", func() (interface{ Render() string }, error) {
			return experiment.RunMessageCounts(seed, ops)
		}},
		{"rollback", func() (interface{ Render() string }, error) {
			return experiment.RunRollback(seed, -5*time.Second)
		}},
		{"recovery", func() (interface{ Render() string }, error) {
			return experiment.RunRecovery(seed, 200*time.Second)
		}},
		{"drift", func() (interface{ Render() string }, error) {
			return experiment.RunDrift(seed, min(ops, 2000))
		}},
		{"token", func() (interface{ Render() string }, error) {
			return experiment.RunTokenTiming(seed, min(invocations, 5000))
		}},
		{"scale", func() (interface{ Render() string }, error) {
			return experiment.RunScaling(seed, []int{2, 4, 8, 12, 16}, 200)
		}},
		{"ablation", func() (interface{ Render() string }, error) {
			return experiment.RunCCSAblation(seed, min(invocations, 2000))
		}},
		{"federation", func() (interface{ Render() string }, error) {
			res, err := experiment.RunFederationSweep(seed)
			fed = res
			return res, err
		}},
	}

	aliases := map[string]string{"fig6a": "fig6", "fig6b": "fig6", "fig6c": "fig6"}
	if canonical, ok := aliases[exp]; ok {
		exp = canonical
	}

	matched := false
	for _, r := range runners {
		if exp != "all" && exp != r.name {
			continue
		}
		matched = true
		start := time.Now()
		res, err := r.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Printf("=== %s (seed %d, %v wall) ===\n%s\n", r.name, seed,
			time.Since(start).Round(time.Millisecond), res.Render())
	}
	if !matched {
		names := make([]string, 0, len(runners)+len(aliases)+1)
		for _, r := range runners {
			names = append(names, r.name)
		}
		for alias := range aliases {
			names = append(names, alias)
		}
		sort.Strings(names)
		names = append(names, "all")
		if exp == "" {
			return fmt.Errorf("no experiment given; available: %s", strings.Join(names, ", "))
		}
		return fmt.Errorf("unknown experiment %q; available: %s", exp, strings.Join(names, ", "))
	}
	if fig5 != nil && jsonOut != "" {
		if err := writeFig5JSON(jsonOut, seed, invocations, fig5); err != nil {
			return fmt.Errorf("write %s: %w", jsonOut, err)
		}
		fmt.Printf("fig5 latency summary -> %s\n", jsonOut)
	}
	if conc != nil {
		if jsonCon != "" {
			if err := writeConcurrentJSON(jsonCon, seed, conc); err != nil {
				return fmt.Errorf("write %s: %w", jsonCon, err)
			}
			fmt.Printf("fig5 concurrent summary -> %s\n", jsonCon)
		}
		if err := conc.gate(); err != nil {
			return fmt.Errorf("fig5concurrent gate: %w", err)
		}
	}
	if fed != nil {
		if jsonFed != "" {
			if err := writeFederationJSON(jsonFed, fed); err != nil {
				return fmt.Errorf("write %s: %w", jsonFed, err)
			}
			fmt.Printf("federation sweep -> %s\n", jsonFed)
		}
		if err := fed.Gate(); err != nil {
			return fmt.Errorf("federation gate: %w", err)
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
