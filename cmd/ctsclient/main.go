// Command ctsclient invokes the CurrentTime method of a ctsnode server group
// over real UDP and prints the returned group clock values with end-to-end
// latencies — the paper's client on node P0.
//
//	ctsclient -id 0 -peers 0=127.0.0.1:9000,1=127.0.0.1:9001,... -n 100
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"cts/internal/gcs"
	"cts/internal/order"
	"cts/internal/rpc"
	"cts/internal/sim"
	"cts/internal/stats"
	"cts/internal/transport"
	"cts/internal/udptransport"
	"cts/internal/wire"
)

const (
	serverGroup wire.GroupID = 100
	clientGroup wire.GroupID = 900
)

func main() {
	var (
		id          = flag.Uint("id", 0, "this processor's node id")
		peers       = flag.String("peers", "", "comma-separated id=host:port list for every group member")
		n           = flag.Int("n", 10, "number of invocations")
		gap         = flag.Duration("gap", 10*time.Millisecond, "pause between invocations")
		quiet       = flag.Bool("q", false, "print only the summary")
		ordererName = flag.String("orderer", "totem", "total-order protocol: totem|seq (must match the server group)")
	)
	flag.Parse()
	orderer, err := order.ParseKind(*ordererName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctsclient:", err)
		os.Exit(2)
	}
	if err := run(uint32(*id), *peers, *n, *gap, *quiet, orderer); err != nil {
		fmt.Fprintln(os.Stderr, "ctsclient:", err)
		os.Exit(1)
	}
}

func parsePeers(s string) (map[transport.NodeID]string, error) {
	out := make(map[transport.NodeID]string)
	if s == "" {
		return nil, fmt.Errorf("-peers is required")
	}
	var start int
	for i := 0; i <= len(s); i++ {
		if i != len(s) && s[i] != ',' {
			continue
		}
		entry := s[start:i]
		start = i + 1
		var id uint32
		var addr string
		if cnt, err := fmt.Sscanf(entry, "%d=%s", &id, &addr); cnt != 2 || err != nil {
			return nil, fmt.Errorf("bad peer entry %q (want id=host:port)", entry)
		}
		out[transport.NodeID(id)] = addr
	}
	return out, nil
}

func run(id uint32, peerSpec string, n int, gap time.Duration, quiet bool, orderer order.Kind) error {
	peers, err := parsePeers(peerSpec)
	if err != nil {
		return err
	}
	self, ok := peers[transport.NodeID(id)]
	if !ok {
		return fmt.Errorf("node %d not present in -peers", id)
	}
	tr, err := udptransport.New(transport.NodeID(id), self)
	if err != nil {
		return err
	}
	defer tr.Close()
	var ring []transport.NodeID
	for pid, addr := range peers {
		ring = append(ring, pid)
		if pid != transport.NodeID(id) {
			if err := tr.SetPeer(pid, addr); err != nil {
				return err
			}
		}
	}
	// Every process must derive the same ring from the same -peers flag.
	sort.Slice(ring, func(i, j int) bool { return ring[i] < ring[j] })

	loop := sim.NewLoop()
	defer loop.Close()
	stack, err := gcs.New(gcs.Config{
		Runtime:   loop,
		Transport: tr,
		Members:   ring,
		Bootstrap: true,
		Order:     order.Options{Kind: orderer},
	})
	if err != nil {
		return err
	}
	defer stack.Stop()
	client, err := rpc.NewClient(rpc.ClientConfig{
		Runtime:     loop,
		Stack:       stack,
		ClientGroup: clientGroup,
		ServerGroup: serverGroup,
		Timeout:     10 * time.Second,
	})
	if err != nil {
		return err
	}
	stack.Start()
	time.Sleep(300 * time.Millisecond) // let the ring and group views settle

	var lat stats.Durations
	var prev uint64
	for i := 0; i < n; i++ {
		start := time.Now()
		body, err := client.InvokeSync("CurrentTime", nil)
		if err != nil {
			return fmt.Errorf("invocation %d: %w", i, err)
		}
		d := time.Since(start)
		lat.Add(d)
		v := binary.BigEndian.Uint64(body)
		if !quiet {
			mono := ""
			if v < prev {
				mono = "  ROLLBACK!"
			}
			fmt.Printf("%3d  group-clock=%v  latency=%v%s\n",
				i, time.Duration(v), d, mono)
		}
		prev = v
		time.Sleep(gap)
	}
	fmt.Printf("latency: %s\n", lat.Summary())
	return nil
}
