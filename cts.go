// Package cts is the public facade of the consistent time service — the
// supported API for embedding the paper's CCS algorithm (Design and
// Implementation of a Consistent Time Service for Fault-Tolerant Distributed
// Systems, DSN 2003) in an application.
//
// A Service bundles a replication manager and a consistent time service on
// top of a group-communication stack. The caller supplies an event loop and
// either a ready gcs stack (WithStack) or a transport plus membership
// (WithTransport, WithMembers) from which the facade builds one; WithOrderer
// selects the total-order protocol underneath (Totem single ring by
// default, or the leader sequencer for low-latency LAN groups):
//
//	svc, err := cts.New(
//		cts.WithRuntime(loop),
//		cts.WithTransport(tr),
//		cts.WithMembers(members),
//		cts.WithOrderer(cts.OrdererOptions{Kind: cts.OrdererSeq}),
//	)
//	...
//	err = svc.Start()
//
// Clock readings go through Service.Clock (or Gettimeofday/Time/Ftime)
// bound to a logical thread Ctx inside the replicated application.
// Observability — the CCS round trace and the stack-wide metrics registry —
// hangs off Service.Observability.
package cts

import (
	"errors"
	"io"
	"sync/atomic"
	"time"

	"cts/internal/core"
	"cts/internal/federation"
	"cts/internal/gcs"
	"cts/internal/hwclock"
	"cts/internal/obs"
	"cts/internal/order"
	"cts/internal/replication"
	"cts/internal/sim"
	"cts/internal/timeserve"
	"cts/internal/transport"
	"cts/internal/wire"
)

// DefaultGroup is the server group identifier used when WithGroup is not
// given (the experiment deployments' ServerGroup).
const DefaultGroup wire.GroupID = 100

// Re-exported types, so applications embed the service without importing
// internal packages.
type (
	// Ctx is a logical thread context inside the replicated application.
	Ctx = replication.Ctx
	// Application is the replicated state machine interface.
	Application = replication.Application
	// Style selects the replication style.
	Style = replication.Style
	// Status mirrors the replica's role.
	Status = replication.Status
	// RoundReport describes one completed CCS round.
	RoundReport = core.RoundReport
	// Compensation selects the drift-compensation strategy (§3.3).
	Compensation = core.Compensation
	// Clock is the interposition facade bound to a logical thread.
	Clock = core.Clock
	// HardwareClock is a physical clock source.
	HardwareClock = hwclock.Clock
	// GroupID identifies a process group.
	GroupID = wire.GroupID
	// NodeID identifies a processor of the component.
	NodeID = transport.NodeID
	// Runtime is the event loop abstraction the stack runs on.
	Runtime = sim.Runtime

	// OrdererOptions selects and tunes the total-order protocol (see
	// WithOrderer): the kind, the primary-component quorum and the
	// per-orderer tuning structs.
	OrdererOptions = order.Options
	// OrdererKind names a total-order protocol implementation.
	OrdererKind = order.Kind
	// TotemTuning tunes the Totem single-ring orderer.
	TotemTuning = order.TotemTuning
	// SeqTuning tunes the leader-sequencer orderer.
	SeqTuning = order.SeqTuning
	// ViewID identifies one membership configuration of the ordering layer.
	ViewID = order.ViewID

	// Recorder is the observability handle: round traces, counters,
	// histograms. A nil *Recorder is valid and fully disabled.
	Recorder = obs.Recorder
	// TraceSink consumes trace events.
	TraceSink = obs.TraceSink
	// Event is one structured trace event.
	Event = obs.Event
	// Sample is one gathered metric value.
	Sample = obs.Sample
	// Logger writes structured key=value lines.
	Logger = obs.Logger
	// JSONLinesSink exports trace events as JSON lines.
	JSONLinesSink = obs.JSONLinesSink
	// MemorySink retains trace events in memory.
	MemorySink = obs.MemorySink
	// KV is one structured logging field.
	KV = obs.KV

	// LeaseConfig configures the core lease plane backing timeserve.
	LeaseConfig = core.LeaseConfig
	// LeaseReading is one leased group-clock read.
	LeaseReading = core.LeaseReading
	// TimeServeServer is the external UDP time-serving frontend.
	TimeServeServer = timeserve.Server
	// TimeServeClient queries the replica group's timeserve frontends with
	// cached leases and retry-across-replicas.
	TimeServeClient = timeserve.Client
	// TimeServeClientConfig configures a TimeServeClient.
	TimeServeClientConfig = timeserve.ClientConfig
	// TimeServeReading is one reading returned to an external client.
	TimeServeReading = timeserve.Reading

	// FederationLink transmits inter-group summary frames (see
	// WithFederation); federation.NewUDPLink is the deployment
	// implementation.
	FederationLink = federation.Link
	// FederationAgent is one group member's inter-group exchange endpoint.
	FederationAgent = federation.Agent
	// FederationTopology is the parsed federation topology document
	// (groups, edges, exchange tuning) consumed by ctsnode -topology.
	FederationTopology = federation.Topology
)

// NewFederationUDPLink binds the federation exchange socket on bindAddr and
// starts its receive loop. Wire received frames to the service's agent with
// SetAgent(svc.Federation()) after Start.
func NewFederationUDPLink(bindAddr string) (*federation.UDPLink, error) {
	return federation.NewUDPLink(bindAddr)
}

// ParseFederationTopology decodes and validates a federation topology
// document.
func ParseFederationTopology(b []byte) (*FederationTopology, error) {
	return federation.ParseTopology(b)
}

// NewTimeServeClient creates a client over the given replica timeserve
// addresses.
func NewTimeServeClient(cfg TimeServeClientConfig) (*TimeServeClient, error) {
	return timeserve.NewClient(cfg)
}

// F builds a structured logging field.
func F(k string, v any) KV { return obs.F(k, v) }

// MultiSink fans trace events out to every given sink.
func MultiSink(sinks ...TraceSink) TraceSink { return obs.MultiSink(sinks...) }

// SampleMap aggregates gathered samples by metric name, summing across nodes.
func SampleMap(samples []Sample) map[string]uint64 { return obs.SampleMap(samples) }

// Replication styles.
const (
	Active     = replication.Active
	Passive    = replication.Passive
	SemiActive = replication.SemiActive
)

// Drift-compensation strategies.
const (
	CompNone      = core.CompNone
	CompMeanDelay = core.CompMeanDelay
	CompExternal  = core.CompExternal
)

// Orderer kinds accepted by WithOrderer.
const (
	// OrdererTotem runs the Totem single ring (the paper's protocol).
	OrdererTotem = order.KindTotem
	// OrdererSeq runs the leader sequencer (lowest view member sequences;
	// elections on leader timeout).
	OrdererSeq = order.KindSeq
	// OrdererInstant runs the sim-instant orderer (simulation only).
	OrdererInstant = order.KindInstant
)

// ParseOrdererKind parses a user-supplied orderer name ("totem", "seq",
// "instant"; empty selects totem), as used by the ctsnode -orderer flag.
func ParseOrdererKind(s string) (OrdererKind, error) { return order.ParseKind(s) }

// NewRecorder creates an observability recorder stamping events with the
// given node identity. sink may be nil for metrics without tracing.
func NewRecorder(node uint32, sink TraceSink) (*Recorder, error) {
	return obs.New(obs.Config{Node: node, Sink: sink})
}

// NewLogger creates a structured key=value logger writing to w.
func NewLogger(w io.Writer) (*Logger, error) { return obs.NewLogger(w) }

// NewJSONLinesSink creates a trace sink writing one JSON event per line.
func NewJSONLinesSink(w io.Writer) (*JSONLinesSink, error) { return obs.NewJSONLinesSink(w) }

// NewMemorySink creates a trace sink retaining events in memory; limit <= 0
// retains everything.
func NewMemorySink(limit int) *MemorySink { return obs.NewMemorySink(limit) }

// DecodeJSONLines parses a JSON-lines trace back into events.
func DecodeJSONLines(r io.Reader) ([]Event, error) { return obs.DecodeJSONLines(r) }

// options collects the configuration assembled by the functional options.
type options struct {
	runtime    sim.Runtime
	stack      *gcs.Stack
	transport  transport.Transport
	ring       []transport.NodeID
	bootstrap  bool
	bootSet    bool
	group      wire.GroupID
	style      replication.Style
	app        replication.Application
	clock      hwclock.Clock
	recovering bool
	ckptEvery  int
	onStatus   func(Status)

	compensation core.Compensation
	meanDelay    time.Duration
	external     hwclock.Clock
	externalGain float64
	agreedCCS    bool
	onRound      func(RoundReport)

	timeserve *TimeServeConfig
	fed       *FederationConfig

	order    order.Options
	orderSet bool

	obs *obs.Recorder
}

// Option configures New.
type Option func(*options)

// WithRuntime sets the event loop the service runs on (sim.NewLoop for real
// deployments, a simulation kernel for tests). Required.
func WithRuntime(rt Runtime) Option { return func(o *options) { o.runtime = rt } }

// WithStack uses an existing group-communication stack. The caller keeps
// ownership: Start/Stop of the stack stay with the caller.
func WithStack(s *gcs.Stack) Option { return func(o *options) { o.stack = s } }

// WithTransport sets the datagram transport from which the facade builds its
// own stack (ignored when WithStack is given). The built stack is started
// and stopped by the Service.
func WithTransport(tr transport.Transport) Option { return func(o *options) { o.transport = tr } }

// WithMembers sets the initial component membership for a facade-built
// stack.
func WithMembers(members []NodeID) Option {
	return func(o *options) { o.ring = append([]NodeID(nil), members...) }
}

// WithRingMembers sets the initial component membership for a facade-built
// stack.
//
// Deprecated: the membership is no longer tied to a ring; use WithMembers.
func WithRingMembers(ring []NodeID) Option { return WithMembers(ring) }

// WithOrderer selects and tunes the total-order protocol underneath a
// facade-built stack (see OrdererOptions). Conflicts with WithStack, whose
// stack already owns an orderer.
func WithOrderer(opts OrdererOptions) Option {
	return func(o *options) { o.order = opts; o.orderSet = true }
}

// WithBootstrap selects whether a facade-built stack forms the initial ring
// directly (default: bootstrap unless WithRecovering(true)).
func WithBootstrap(b bool) Option { return func(o *options) { o.bootstrap = b; o.bootSet = true } }

// WithGroup sets the server group identifier. Default DefaultGroup.
func WithGroup(g GroupID) Option { return func(o *options) { o.group = g } }

// WithStyle sets the replication style. Default Active.
func WithStyle(s Style) Option { return func(o *options) { o.style = s } }

// WithApplication sets the replicated state machine. Default: a built-in
// application answering "CurrentTime" with the group clock as a big-endian
// uint64 nanosecond count.
func WithApplication(app Application) Option { return func(o *options) { o.app = app } }

// WithClock sets the physical hardware clock. Default the system clock.
func WithClock(c HardwareClock) Option { return func(o *options) { o.clock = c } }

// WithRecovering marks a replica that joins an existing group via state
// transfer.
func WithRecovering(r bool) Option { return func(o *options) { o.recovering = r } }

// WithCheckpointEvery sets the passive primary's checkpoint interval.
func WithCheckpointEvery(n int) Option { return func(o *options) { o.ckptEvery = n } }

// WithOnStatus observes replica role changes. Called on the loop.
func WithOnStatus(fn func(Status)) Option { return func(o *options) { o.onStatus = fn } }

// WithCompensation selects the drift-compensation strategy (§3.3).
func WithCompensation(c Compensation) Option { return func(o *options) { o.compensation = c } }

// WithMeanDelay sets the per-round offset bias for CompMeanDelay.
func WithMeanDelay(d time.Duration) Option { return func(o *options) { o.meanDelay = d } }

// WithExternalReference sets the reference clock and gain for CompExternal.
// gain 0 takes the default (0.1).
func WithExternalReference(ref HardwareClock, gain float64) Option {
	return func(o *options) { o.external = ref; o.externalGain = gain }
}

// WithAgreedCCS trades the safe-delivery guarantee for lower round latency
// (ablation of §4.3).
func WithAgreedCCS(a bool) Option { return func(o *options) { o.agreedCCS = a } }

// WithOnRound observes every completed CCS round. Called on the loop.
func WithOnRound(fn func(RoundReport)) Option { return func(o *options) { o.onRound = fn } }

// WithObservability plumbs the recorder through every layer of the service's
// stack: round traces go to its sink, and each layer registers its counters
// with its registry. Without this option the Service still creates a
// sink-less recorder, so Observability() and metrics always work.
func WithObservability(r *Recorder) Option { return func(o *options) { o.obs = r } }

// TimeServeConfig configures the external time-serving frontend enabled by
// WithTimeServe.
type TimeServeConfig struct {
	// Addr is the UDP address the frontend listens on (e.g. ":4460",
	// "127.0.0.1:0"). Required.
	Addr string
	// Shards is the number of listener shards (SO_REUSEPORT sockets on
	// Linux). Default 1.
	Shards int
	// LeaseWindow is how long after a CCS adoption external reads may be
	// answered from the lease. Default 1s.
	LeaseWindow time.Duration
	// DriftPPM widens the advertised staleness bound as the lease ages.
	// Default 100 ppm (or the simulated clock's own drift if larger).
	DriftPPM float64
	// RefreshEvery is the cadence of the background lease-refresh CCS
	// rounds keeping the lease alive between client-driven rounds.
	// Default LeaseWindow/4. Negative disables the refresher (the caller
	// drives RefreshLease itself).
	RefreshEvery time.Duration
	// RecvBuf and SendBuf size the shard sockets. Default 4 MiB.
	RecvBuf, SendBuf int
	// ServeIO selects the shards' kernel I/O path: "auto" (batched
	// recvmmsg/sendmmsg where supported; the default), "seq" (one datagram
	// per syscall), or "mmsg" (require batching; Start fails on platforms
	// without it).
	ServeIO string
	// OnFallback, when set, is called once per degradation event: the
	// batched syscalls proving unavailable at runtime, or a refused
	// SO_REUSEPORT bind collapsing the shards onto one socket.
	OnFallback func(reason string)
}

// WithTimeServe enables the external time-serving frontend: Start enables
// the core lease plane, binds the sharded UDP listeners, and keeps the lease
// fresh with background refresh CCS rounds.
func WithTimeServe(cfg TimeServeConfig) Option {
	return func(o *options) { o.timeserve = &cfg }
}

// FederationConfig configures the inter-group federation plane enabled by
// WithFederation. The local group identifier comes from WithGroup; the
// summaries themselves come from the lease plane, so WithFederation requires
// WithTimeServe (which owns the lease and its refresher).
type FederationConfig struct {
	// Link transmits summary frames toward neighbor groups. Required.
	// For deployments use NewFederationUDPLink and, after Start, attach the
	// receive side with link.SetAgent(svc.Federation()).
	Link FederationLink
	// Neighbors lists the adjacent groups' identifiers.
	Neighbors []GroupID
	// Key authenticates summary frames; every group of one federation must
	// share it. Default "cts-federation".
	Key []byte
	// ExchangeEvery is the summary exchange cadence. Default 50ms.
	ExchangeEvery time.Duration
	// MaxStep bounds the forward nudge of one federated round. Default
	// 500µs.
	MaxStep time.Duration
	// Precision is the inter-group transit uncertainty. Default 1ms.
	Precision time.Duration
	// InitialSlack pads published bounds until the first exchange. Default
	// 10ms.
	InitialSlack time.Duration
	// AgingPPM is the slack growth rate between federated rounds. Default:
	// the neighbors' bounded nudge rate plus a drift allowance.
	AgingPPM float64
}

// WithFederation joins this group to an inter-group federation: Start spawns
// the exchange agent, which periodically summarizes the group's lease to
// every neighbor group and adopts bounded federated nudges when a neighbor
// is confidently ahead. Published staleness bounds then also cover the
// residual inter-group skew.
func WithFederation(cfg FederationConfig) Option {
	return func(o *options) { o.fed = &cfg }
}

// Service is one replica of a consistent-time server group.
type Service struct {
	mgr       *replication.Manager
	svc       *core.TimeService
	stack     *gcs.Stack
	obs       *obs.Recorder
	ownsStack bool

	rt     sim.Runtime
	clock  hwclock.Clock
	group  wire.GroupID
	tsCfg  *TimeServeConfig
	ts     *timeserve.Server
	fedCfg *FederationConfig
	fed    *federation.Agent

	refreshTimer sim.Canceler // loop-only
	fedTimer     sim.Canceler // loop-only
	refreshStop  atomic.Bool
	stopped      atomic.Bool
}

// leaseSource adapts the core lease plane to the timeserve frontend.
type leaseSource struct {
	svc  *core.TimeService
	node uint32
}

func (l leaseSource) LeaseRead() (timeserve.Reading, bool) {
	r, ok := l.svc.LeaseRead()
	if !ok {
		return timeserve.Reading{}, false
	}
	return timeserve.Reading{GroupClock: r.GroupClock, Bound: r.Bound, Epoch: r.Epoch, Node: l.node}, true
}

// defaultApp answers CurrentTime with the group clock (big-endian uint64
// nanoseconds) — enough to run a time server with no custom application.
type defaultApp struct{ svc *core.TimeService }

func (a *defaultApp) Invoke(ctx *Ctx, method string, _ []byte) []byte {
	switch method {
	case "CurrentTime":
		v := a.svc.Gettimeofday(ctx)
		out := make([]byte, 8)
		for i := 0; i < 8; i++ {
			out[i] = byte(uint64(v) >> (56 - 8*i))
		}
		return out
	}
	return nil
}
func (a *defaultApp) Snapshot() []byte { return nil }
func (a *defaultApp) Restore([]byte)   {}

// New assembles a Service from the options. It validates the configuration
// of every layer; Start begins protocol activity.
func New(opts ...Option) (*Service, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.runtime == nil {
		return nil, errors.New("cts: WithRuntime is required")
	}
	if o.group == 0 {
		o.group = DefaultGroup
	}
	if o.clock == nil {
		o.clock = hwclock.SystemClock{}
	}
	if o.obs == nil {
		// A sink-less recorder: tracing stays off (nil sink fast path), but
		// the metrics registry works, so Observability() is always usable.
		rec, err := obs.New(obs.Config{})
		if err != nil {
			return nil, err
		}
		o.obs = rec
	}

	s := &Service{obs: o.obs}
	if o.stack != nil {
		if o.orderSet {
			return nil, errors.New("cts: WithOrderer conflicts with WithStack (the supplied stack already owns an orderer)")
		}
		s.stack = o.stack
	} else {
		if o.transport == nil {
			return nil, errors.New("cts: WithStack or WithTransport is required")
		}
		if !o.bootSet {
			o.bootstrap = !o.recovering
		}
		rec := o.obs.ForNode(uint32(o.transport.LocalID()))
		st, err := gcs.New(gcs.Config{
			Runtime:   o.runtime,
			Transport: o.transport,
			Members:   o.ring,
			Bootstrap: o.bootstrap,
			Order:     o.order,
			Obs:       rec,
		})
		if err != nil {
			return nil, err
		}
		s.stack = st
		s.ownsStack = true
	}

	dapp := &defaultApp{}
	app := o.app
	if app == nil {
		app = dapp
	}
	mgr, err := replication.New(replication.Config{
		Runtime:         o.runtime,
		Stack:           s.stack,
		Group:           o.group,
		Style:           o.style,
		App:             app,
		Recovering:      o.recovering,
		CheckpointEvery: o.ckptEvery,
		OnStatus:        o.onStatus,
		Obs:             o.obs.ForNode(uint32(s.stack.LocalID())),
	})
	if err != nil {
		return nil, err
	}
	svc, err := core.New(core.Config{
		Manager:      mgr,
		Clock:        o.clock,
		Compensation: o.compensation,
		MeanDelay:    o.meanDelay,
		External:     o.external,
		ExternalGain: o.externalGain,
		AgreedCCS:    o.agreedCCS,
		OnRound:      o.onRound,
	})
	if err != nil {
		return nil, err
	}
	if o.fed != nil {
		if o.fed.Link == nil {
			return nil, errors.New("cts: FederationConfig.Link is required")
		}
		if o.timeserve == nil {
			return nil, errors.New("cts: WithFederation requires WithTimeServe (the lease plane supplies the summaries)")
		}
	}
	dapp.svc = svc
	s.mgr = mgr
	s.svc = svc
	s.rt = o.runtime
	s.clock = o.clock
	s.group = o.group
	s.tsCfg = o.timeserve
	s.fedCfg = o.fed
	return s, nil
}

// Start joins the server group and, for a facade-built stack, begins ring
// activity. With WithTimeServe it also enables the lease plane, binds the
// serving frontend, and starts the background lease refresher. Safe to call
// from any goroutine.
func (s *Service) Start() error {
	if err := s.mgr.Start(); err != nil {
		return err
	}
	if s.ownsStack {
		s.stack.Start()
	}
	if s.tsCfg != nil {
		if err := s.startTimeServe(*s.tsCfg); err != nil {
			s.Stop()
			return err
		}
	}
	if s.fedCfg != nil {
		if err := s.startFederation(*s.fedCfg); err != nil {
			s.Stop()
			return err
		}
	}
	return nil
}

// startFederation brings up the inter-group exchange plane of
// WithFederation.
func (s *Service) startFederation(cfg FederationConfig) error {
	every := cfg.ExchangeEvery
	if every == 0 {
		every = 50 * time.Millisecond
	}
	node := uint32(s.stack.LocalID())
	agent, err := federation.New(federation.Config{
		Runtime:       s.rt,
		Service:       s.svc,
		Manager:       s.mgr,
		Clock:         s.clock,
		Link:          cfg.Link,
		Group:         s.group,
		Neighbors:     cfg.Neighbors,
		Key:           cfg.Key,
		ExchangeEvery: every,
		MaxStep:       cfg.MaxStep,
		Precision:     cfg.Precision,
		InitialSlack:  cfg.InitialSlack,
		AgingPPM:      cfg.AgingPPM,
		Obs:           s.obs.ForNode(node),
	})
	if err != nil {
		return err
	}
	s.fed = agent
	agent.Start()
	s.rt.Post(func() { s.fedTick(every) })
	return nil
}

// fedTick drives the summary exchange cadence alongside the lease refresher.
// Loop-only; the chain re-arms itself until Stop.
func (s *Service) fedTick(every time.Duration) {
	if s.refreshStop.Load() {
		return
	}
	s.fed.ExchangeTick()
	s.fedTimer = s.rt.After(every, func() { s.fedTick(every) })
}

// startTimeServe brings up the serving plane of WithTimeServe.
func (s *Service) startTimeServe(cfg TimeServeConfig) error {
	if cfg.LeaseWindow == 0 {
		cfg.LeaseWindow = time.Second
	}
	if err := s.svc.EnableLease(core.LeaseConfig{
		Window:   cfg.LeaseWindow,
		DriftPPM: cfg.DriftPPM,
	}); err != nil {
		return err
	}
	io, err := timeserve.ParseIOMode(cfg.ServeIO)
	if err != nil {
		return err
	}
	node := uint32(s.stack.LocalID())
	srv, err := timeserve.Start(timeserve.Config{
		Addr:       cfg.Addr,
		Shards:     cfg.Shards,
		Node:       node,
		Source:     leaseSource{svc: s.svc, node: node},
		RecvBuf:    cfg.RecvBuf,
		SendBuf:    cfg.SendBuf,
		IO:         io,
		OnFallback: cfg.OnFallback,
		Obs:        s.obs.ForNode(node),
	})
	if err != nil {
		return err
	}
	s.ts = srv
	every := cfg.RefreshEvery
	if every == 0 {
		every = cfg.LeaseWindow / 4
	}
	if every > 0 {
		s.rt.Post(func() { s.refreshTick(every) })
	}
	return nil
}

// refreshTick drives the background lease-refresh rounds. Loop-only; the
// chain re-arms itself until Stop.
func (s *Service) refreshTick(every time.Duration) {
	if s.refreshStop.Load() {
		return
	}
	if s.mgr.Live() {
		s.svc.RefreshLease()
	}
	s.refreshTimer = s.rt.After(every, func() { s.refreshTick(every) })
}

// Stop leaves the group, halts the serving frontend and refresher, and, for
// a facade-built stack, halts the ring. Idempotent: Start already stops the
// stack when a later phase (e.g. the serving frontend) fails to come up, and
// callers typically also hold a deferred Stop.
func (s *Service) Stop() {
	if !s.stopped.CompareAndSwap(false, true) {
		return
	}
	s.refreshStop.Store(true)
	s.rt.Post(func() {
		if s.refreshTimer != nil {
			s.refreshTimer.Cancel()
		}
		if s.fedTimer != nil {
			s.fedTimer.Cancel()
		}
	})
	if s.fed != nil {
		s.fed.Stop()
	}
	if s.ts != nil {
		_ = s.ts.Close() // sockets are going away with the process
		s.ts = nil
	}
	s.mgr.Stop()
	if s.ownsStack {
		s.stack.Stop()
	}
}

// TimeServe exposes the serving frontend (nil without WithTimeServe or
// before Start).
func (s *Service) TimeServe() *TimeServeServer { return s.ts }

// Federation exposes the inter-group exchange agent (nil without
// WithFederation or before Start). Deployments attach the receive side of
// their link to it: link.SetAgent(svc.Federation()).
func (s *Service) Federation() *FederationAgent { return s.fed }

// TimeServeAddr reports the frontend's bound UDP address ("" when not
// serving). Useful with ":0".
func (s *Service) TimeServeAddr() string {
	if s.ts == nil {
		return ""
	}
	return s.ts.Addr().String()
}

// LeaseRead answers one external read from the replica's current lease.
// Safe from any goroutine; ok=false when no valid lease is held.
func (s *Service) LeaseRead() (LeaseReading, bool) { return s.svc.LeaseRead() }

// RefreshLease starts a lease-refresh CCS round unless one is in flight.
// Safe from any goroutine.
func (s *Service) RefreshLease() { s.svc.RefreshLease() }

// Clock returns the interposition facade bound to a logical thread context.
func (s *Service) Clock(ctx *Ctx) *Clock { return s.svc.Clock(ctx) }

// Gettimeofday performs a consistent clock read at µs granularity.
func (s *Service) Gettimeofday(ctx *Ctx) time.Duration { return s.svc.Gettimeofday(ctx) }

// Time performs a consistent clock read at second granularity.
func (s *Service) Time(ctx *Ctx) time.Duration { return s.svc.Time(ctx) }

// Ftime performs a consistent clock read at millisecond granularity.
func (s *Service) Ftime(ctx *Ctx) time.Duration { return s.svc.Ftime(ctx) }

// Timestamp reports the group clock value to stamp into outgoing
// inter-group messages (§5). Loop-only.
func (s *Service) Timestamp() time.Duration { return s.svc.Timestamp() }

// ObserveTimestamp records a group clock value carried by a delivered
// inter-group message (§5). Loop-only.
func (s *Service) ObserveTimestamp(t time.Duration) { s.svc.ObserveTimestamp(t) }

// Observability returns the service's recorder: trace control, the metrics
// registry, and histograms. Never nil.
func (s *Service) Observability() *Recorder { return s.obs }

// DumpMetrics writes a text dump of every registered counter and histogram.
// Loop-only, like the counters it gathers.
func (s *Service) DumpMetrics(w io.Writer) { s.obs.DumpMetrics(w) }

// Stack exposes the group-communication endpoint.
func (s *Service) Stack() *gcs.Stack { return s.stack }

// Manager exposes the replication manager.
func (s *Service) Manager() *replication.Manager { return s.mgr }
